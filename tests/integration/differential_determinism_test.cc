// Randomized differential determinism harness.
//
// The engine's determinism story now has TWO contracts (simt/cost_model.h):
// kPerRecord (the original byte-identical per-record drain) and
// kPerDestination (the associative pre-combining drain). This harness sweeps
// seed-randomized graphs from three generator families (R-MAT, Erdős–Rényi,
// small-world) across the full algorithm suite, host thread counts
// {1, 2, 3, 8}, pinned directions (natural / force_push / force_pull) and
// three replay modes (per-record / drain-side fold / drain-side fold +
// collect-side pre-combining), asserting for every cell:
//
//   * DIFFERENTIAL DETERMINISM: the bench StatsFingerprint (counters,
//     simulated time, patterns, raw value bytes) of every multi-threaded run
//     equals the host_threads=1 run of the SAME configuration — i.e. the
//     parallel drains are differentially tested against their serial
//     counterparts, under whichever contract the configuration selects.
//   * ORACLE CORRECTNESS: output values match the textbook CPU references in
//     baselines/cpu_reference.* (exactly for the integer-valued algorithms
//     in every direction mode; within tolerance for the floating-point ones,
//     whose push-mode record order legitimately reassociates sums).
//
// ≥ 20 seed/graph combinations per algorithm (3 families × 7 seeds by
// default), every combination exercising all four thread counts — this is
// the randomized sweep the ctest `slow`/`sweep` labels exist for (the
// default CI job runs `ctest -LE slow`; run it nightly-style or locally via
// `ctest -L sweep`).
//
// NIGHTLY SCALING: the sweep's dimensions are env-tunable so the scheduled
// workflow (.github/workflows/nightly-sweep.yml) can grow it far beyond the
// seconds-scale defaults without touching the fast suite:
//   SIMDX_SWEEP_SEEDS    seeds per generator family      (default 7)
//   SIMDX_SWEEP_SCALE    graph scale, RMAT log2 vertices (default 8; ER and
//                        small-world sizes scale by 2^(SCALE-8) with it)
//   SIMDX_SWEEP_THREADS  comma-separated thread list     (default "2,3,8")
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "bench/common.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "simt/device.h"

namespace simdx {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<uint64_t>(v) : fallback;
}

std::vector<uint32_t> SweepThreads() {
  static const std::vector<uint32_t>* threads = [] {
    auto* v = new std::vector<uint32_t>();
    const char* s = std::getenv("SIMDX_SWEEP_THREADS");
    std::istringstream ss(s == nullptr || *s == '\0' ? "2,3,8" : s);
    std::string token;
    while (std::getline(ss, token, ',')) {
      const uint64_t t = std::strtoull(token.c_str(), nullptr, 10);
      if (t >= 1 && t <= 64) {
        v->push_back(static_cast<uint32_t>(t));
      }
    }
    if (v->empty()) {
      *v = {2, 3, 8};
    }
    return v;
  }();
  return *threads;
}

struct GraphCase {
  std::string name;
  Graph graph;
};

// Seed/graph combinations shared by every algorithm's sweep: 3 families ×
// SIMDX_SWEEP_SEEDS seeds at SIMDX_SWEEP_SCALE. The defaults (21 cases,
// ≤ ~512 vertices, ≤ ~4k edges) keep the full cross-product minutes, not
// hours, on one core; the nightly job turns both knobs up.
const std::vector<GraphCase>& AllCases() {
  static const std::vector<GraphCase>* cases = [] {
    const uint64_t seeds = std::max<uint64_t>(1, EnvU64("SIMDX_SWEEP_SEEDS", 7));
    const uint32_t scale = static_cast<uint32_t>(
        std::min<uint64_t>(20, std::max<uint64_t>(6, EnvU64("SIMDX_SWEEP_SCALE", 8))));
    // ER / small-world sizes grow with the same knob, anchored at the
    // historical 300/256-vertex defaults for scale 8.
    const uint32_t er_n = scale >= 8 ? 300u << (scale - 8) : 300u >> (8 - scale);
    const uint32_t sw_n = scale >= 8 ? 256u << (scale - 8) : 256u >> (8 - scale);
    auto* v = new std::vector<GraphCase>();
    for (uint64_t seed = 1; seed <= seeds; ++seed) {
      v->push_back({"rmat/" + std::to_string(seed),
                    Graph::FromEdges(GenerateRmat(scale, 8, seed),
                                     /*directed=*/false)});
      v->push_back({"er/" + std::to_string(seed),
                    Graph::FromEdges(GenerateUniformRandom(er_n, 6 * er_n, seed),
                                     /*directed=*/false)});
      v->push_back({"sw/" + std::to_string(seed),
                    Graph::FromEdges(GenerateSmallWorld(sw_n, 4, 0.2, seed),
                                     /*directed=*/false)});
    }
    return v;
  }();
  return *cases;
}

enum class Dir { kNatural, kForcePush, kForcePull };
constexpr Dir kDirs[] = {Dir::kNatural, Dir::kForcePush, Dir::kForcePull};

const char* Name(Dir d) {
  switch (d) {
    case Dir::kNatural:
      return "natural";
    case Dir::kForcePush:
      return "force_push";
    default:
      return "force_pull";
  }
}

// Replay-accounting mode: the per-record contract, the drain-side fold
// (kPerDestination), and the drain-side fold with collect-side
// pre-combining stacked on top (min_fold 0 forces the fold-table walk on
// every push iteration, so tiny graphs still exercise it — including the
// thread-count-stable chunk plan that keeps FP folds bit-identical).
enum class Mode { kPerRecord, kPreCombine, kPreCombineCollect };
constexpr Mode kModes[] = {Mode::kPerRecord, Mode::kPreCombine,
                           Mode::kPreCombineCollect};

const char* Name(Mode m) {
  switch (m) {
    case Mode::kPerRecord:
      return "per_record";
    case Mode::kPreCombine:
      return "pre_combine";
    default:
      return "pre_combine_collect";
  }
}

EngineOptions Options(uint32_t threads, Dir dir, Mode mode) {
  EngineOptions o;
  o.host_threads = threads;
  o.sim_worker_threads = 64;  // small graphs: keep the online filter viable
  o.force_push = dir == Dir::kForcePush;
  o.force_pull = dir == Dir::kForcePull;
  o.pre_combine_replay = mode != Mode::kPerRecord;
  o.pre_combine_collect = mode == Mode::kPreCombineCollect;
  o.pre_combine_collect_min_fold = 0.0;
  o.parallel_replay_min_records = 0;  // tiny graphs must still partition
  return o;
}

// One configuration cell: runs serial, sweeps threads against it, and hands
// the serial result to `check_oracle`.
template <typename RunFn, typename OracleFn>
void SweepCell(const std::string& label, Dir dir, Mode mode, const RunFn& run,
               const OracleFn& check_oracle) {
  SCOPED_TRACE(label + " dir=" + Name(dir) + " mode=" + Name(mode));
  const auto serial = run(Options(1, dir, mode));
  ASSERT_TRUE(serial.stats.ok());
  const std::string serial_print = bench::StatsFingerprint(serial);
  check_oracle(serial);
  for (uint32_t threads : SweepThreads()) {
    const auto parallel = run(Options(threads, dir, mode));
    EXPECT_EQ(bench::StatsFingerprint(parallel), serial_print)
        << "host_threads=" << threads;
    // The record-stream telemetry is outside the fingerprint by design
    // (collect-fold-on vs -off runs must stay fingerprint-comparable), so
    // pin its thread-count determinism here.
    EXPECT_EQ(parallel.stats.push_records_buffered,
              serial.stats.push_records_buffered)
        << "host_threads=" << threads;
    EXPECT_EQ(parallel.stats.push_record_candidates,
              serial.stats.push_record_candidates)
        << "host_threads=" << threads;
  }
}

// Full sweep for one algorithm: every graph case × direction × mode.
template <typename RunFn, typename OracleFn>
void SweepAlgorithm(const RunFn& run, const OracleFn& check_oracle) {
  for (const GraphCase& c : AllCases()) {
    for (Dir dir : kDirs) {
      for (Mode mode : kModes) {
        SweepCell(c.name, dir, mode,
                  [&](const EngineOptions& o) { return run(c.graph, o); },
                  [&](const auto& serial) { check_oracle(c.graph, serial, dir); });
      }
    }
  }
}

TEST(DifferentialDeterminismTest, Bfs) {
  SweepAlgorithm(
      [](const Graph& g, const EngineOptions& o) {
        return RunBfs(g, 0, MakeK40(), o);
      },
      [](const Graph& g, const RunResult<uint32_t>& r, Dir) {
        EXPECT_EQ(r.values, CpuBfsLevels(g, 0));  // min-fold: exact always
      });
}

TEST(DifferentialDeterminismTest, Sssp) {
  SweepAlgorithm(
      [](const Graph& g, const EngineOptions& o) {
        return RunSssp(g, 0, MakeK40(), o);
      },
      [](const Graph& g, const RunResult<uint32_t>& r, Dir) {
        EXPECT_EQ(r.values, CpuDijkstra(g, 0));
      });
}

TEST(DifferentialDeterminismTest, Wcc) {
  SweepAlgorithm(
      [](const Graph& g, const EngineOptions& o) {
        return RunWcc(g, MakeK40(), o);
      },
      [](const Graph& g, const RunResult<uint32_t>& r, Dir) {
        EXPECT_EQ(r.values, CpuWccLabels(g));
      });
}

TEST(DifferentialDeterminismTest, KCore) {
  SweepAlgorithm(
      [](const Graph& g, const EngineOptions& o) {
        return RunKCore(g, 4, MakeK40(), o);
      },
      [](const Graph& g, const RunResult<KCoreValue>& r, Dir) {
        const std::vector<bool> expected = CpuKCoreRemoved(g, 4);
        for (VertexId v = 0; v < g.vertex_count(); ++v) {
          EXPECT_EQ(r.values[v].removed != 0, expected[v]) << "vertex " << v;
        }
      });
}

TEST(DifferentialDeterminismTest, PageRank) {
  SweepAlgorithm(
      [](const Graph& g, const EngineOptions& o) {
        return RunPageRank(g, MakeK40(), o, /*epsilon=*/1e-10);
      },
      [](const Graph& g, const RunResult<PageRankValue>& r, Dir) {
        const std::vector<double> expected = CpuPageRank(g, 0.85, 1e-12);
        for (VertexId v = 0; v < g.vertex_count(); ++v) {
          EXPECT_NEAR(r.values[v].rank, expected[v], 1e-6) << "vertex " << v;
        }
      });
}

TEST(DifferentialDeterminismTest, Bp) {
  SweepAlgorithm(
      [](const Graph& g, const EngineOptions& o) {
        return RunBp(g, 10, MakeK40(), o);
      },
      [](const Graph& g, const RunResult<double>& r, Dir dir) {
        if (dir == Dir::kForcePush) {
          // BP's Apply REPLACES the belief with prior + combined, so the
          // per-record push drain (last record wins) is deterministic but
          // not the sum-product fixpoint — only the pre-combined push and
          // the pull gathers compute BP. The differential gate above still
          // covers force_push; the oracle check only applies to gathers.
          return;
        }
        const std::vector<double> expected = CpuBp(g, 10);
        for (VertexId v = 0; v < g.vertex_count(); ++v) {
          EXPECT_NEAR(r.values[v], expected[v], 1e-9) << "vertex " << v;
        }
      });
}

// Deterministic SpMV input vector.
std::vector<double> SpmvInput(const Graph& g) {
  std::vector<double> x(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    x[v] = 1.0 / (1.0 + v);
  }
  return x;
}

TEST(DifferentialDeterminismTest, Spmv) {
  SweepAlgorithm(
      [](const Graph& g, const EngineOptions& o) {
        return RunSpmv(g, SpmvInput(g), MakeK40(), o);
      },
      [](const Graph& g, const RunResult<SpmvValue>& r, Dir dir) {
        if (dir == Dir::kForcePush) {
          // Replace-style Apply, same caveat as BP below: only the gathers
          // (and the pre-combined push, tested separately) compute y = A x.
          return;
        }
        const std::vector<double> expected = CpuSpmv(g, SpmvInput(g));
        for (VertexId v = 0; v < g.vertex_count(); ++v) {
          EXPECT_NEAR(r.values[v].y, expected[v], 1e-9) << "vertex " << v;
        }
      });
}

// The pre-combined push drain actually REPAIRS the two replace-style
// programs in push mode: one Apply per destination receives the full fold,
// so forced-push BP and SpMV agree with their pull oracles (up to
// record-order reassociation of the sum) — evidence the fold covers every
// record.
TEST(DifferentialDeterminismTest, PreCombinedPushBpMatchesOracle) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g =
        Graph::FromEdges(GenerateUniformRandom(200, 1200, seed), false);
    for (Mode mode : {Mode::kPreCombine, Mode::kPreCombineCollect}) {
      const auto r = RunBp(g, 10, MakeK40(), Options(3, Dir::kForcePush, mode));
      ASSERT_TRUE(r.stats.ok());
      const std::vector<double> expected = CpuBp(g, 10);
      for (VertexId v = 0; v < g.vertex_count(); ++v) {
        EXPECT_NEAR(r.values[v], expected[v], 1e-9)
            << "seed " << seed << " mode " << Name(mode) << " vertex " << v;
      }
    }
  }
}

TEST(DifferentialDeterminismTest, PreCombinedPushSpmvMatchesOracle) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const Graph g =
        Graph::FromEdges(GenerateUniformRandom(200, 1200, seed), false);
    const std::vector<double> x = SpmvInput(g);
    for (Mode mode : {Mode::kPreCombine, Mode::kPreCombineCollect}) {
      const auto r = RunSpmv(g, x, MakeK40(), Options(3, Dir::kForcePush, mode));
      ASSERT_TRUE(r.stats.ok());
      const std::vector<double> expected = CpuSpmv(g, x);
      for (VertexId v = 0; v < g.vertex_count(); ++v) {
        EXPECT_NEAR(r.values[v].y, expected[v], 1e-9)
            << "seed " << seed << " mode " << Name(mode) << " vertex " << v;
      }
    }
  }
}

}  // namespace
}  // namespace simdx
