// Replays the paper's worked examples end to end: the Figure 1 SSSP
// narrative on the 9-vertex graph, the Figure 6 filter mechanics, and the
// Section 5 grid-sizing example — the places where the paper commits to
// concrete numbers a reproduction can be checked against.
#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "core/engine.h"
#include "core/filters.h"
#include "graph/generators.h"
#include "simt/barrier.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions WalkthroughOptions() {
  EngineOptions o;
  o.sim_worker_threads = 2;  // the two threads of Figure 6
  o.overflow_threshold = 64;
  return o;
}

// Figure 1: SSSP from a on {a..i}. The run starts with a single active
// vertex, relaxes outward, improves b across non-adjacent iterations, and
// converges to the final distance array.
TEST(PaperWalkthrough, Figure1SsspNarrative) {
  const Graph g = Graph::FromEdges(PaperFigure1Graph(), false);
  SsspProgram program;
  program.source = 0;
  Engine<SsspProgram> engine(g, MakeK40(), WalkthroughOptions());
  const auto result = engine.Run(program);
  ASSERT_TRUE(result.stats.ok());

  const std::vector<uint32_t> expected = {0, 4, 5, 1, 3, 4, 6, 7, 9};
  EXPECT_EQ(result.values, expected);

  // Iteration 1 processes only the source.
  ASSERT_FALSE(result.stats.iteration_logs.empty());
  EXPECT_EQ(result.stats.iteration_logs[0].frontier_size, 1u);
  // The walkthrough needs ~5 iterations on this graph.
  EXPECT_GE(result.stats.iterations, 4u);
  EXPECT_LE(result.stats.iterations, 7u);
  // A 9-vertex graph never overflows a 64-entry bin: online filter only.
  EXPECT_EQ(result.stats.filter_pattern.find('B'), std::string::npos);
}

// Figure 6(b): the ballot filter walking metadata with 2 cooperating
// threads produces the sorted unique active list {b, f, g, h, i} (ids
// 1, 5, 6, 7, 8) when exactly those vertices' metadata changed.
TEST(PaperWalkthrough, Figure6BallotFilter) {
  const std::vector<bool> updated = {false, true, false, false, false,
                                     true,  true, true,  true};
  CostCounters c;
  const auto frontier = BallotFilterScan(
      9, [&](VertexId v) { return static_cast<bool>(updated[v]); }, c);
  EXPECT_EQ(frontier, (std::vector<VertexId>{1, 5, 6, 7, 8}));
}

// Figure 6(c): the online filter records {e, c} (ids 4, 2) as the next
// active list while processing the updates of iteration 2.
TEST(PaperWalkthrough, Figure6OnlineFilter) {
  ThreadBins bins(2, 64);
  // Thread 0 processes vertex b's neighbors and finds c updated; thread 1
  // processes d's and finds e updated.
  bins.Record(1, 4);
  bins.Record(0, 2);
  EXPECT_EQ(bins.Concatenate(), (std::vector<VertexId>{2, 4}));
  EXPECT_FALSE(bins.overflowed());
}

// Section 5's worked example: 110 registers, 128 threads/CTA on a 15-SMX
// K40 gives a 60-CTA grid — and that grid is exactly barrier-safe.
TEST(PaperWalkthrough, Section5GridSizing) {
  const KernelResources kernel{110, 128};
  const uint32_t grid = DeadlockFreeGridSize(MakeK40(), kernel);
  EXPECT_EQ(grid, 60u);
  EXPECT_FALSE(SimulateGlobalBarrier(grid, grid, 10).deadlocked);
  EXPECT_TRUE(SimulateGlobalBarrier(grid + 1, grid, 10).deadlocked);
}

// Figure 4's SSSP program really is "tens of lines": the ACC program text is
// small and the engine supplies the rest. (Guards the ease-of-programming
// claim structurally: the program object is a handful of plain functions.)
TEST(PaperWalkthrough, AccProgramIsSmall) {
  static_assert(sizeof(SsspProgram) <= 128,
                "ACC programs carry configuration plus small scheduling "
                "bookkeeping (delta buckets), never engine state");
  static_assert(AccProgram<SsspProgram>);
  SUCCEED();
}

}  // namespace
}  // namespace simdx
