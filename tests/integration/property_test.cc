// Property-based sweeps over random graphs: algorithm-independent invariants
// that must hold for every seed, not just hand-picked examples.
#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "simt/device.h"

namespace simdx {
namespace {

struct Workload {
  std::string name;
  uint64_t seed;
  bool skewed;  // rmat vs uniform
};

class RandomGraphProperties : public ::testing::TestWithParam<Workload> {
 protected:
  void SetUp() override {
    const auto& p = GetParam();
    EdgeList edges = p.skewed ? GenerateRmat(9, 8, p.seed)
                              : GenerateUniformRandom(512, 4096, p.seed);
    graph_ = Graph::FromEdges(std::move(edges), false);
    options_.sim_worker_threads = 64;
  }

  Graph graph_;
  EngineOptions options_;
};

// BFS levels differ by at most 1 across any edge (triangle inequality for
// hop counts), and parents exist at level-1.
TEST_P(RandomGraphProperties, BfsLevelsAreConsistent) {
  const auto result = RunBfs(graph_, 0, MakeK40(), options_);
  ASSERT_TRUE(result.stats.ok());
  const auto& level = result.values;
  for (VertexId v = 0; v < graph_.vertex_count(); ++v) {
    if (level[v] == kInfinity) {
      continue;
    }
    bool has_parent = level[v] == 0;
    for (VertexId u : graph_.out().Neighbors(v)) {
      if (level[u] != kInfinity) {
        const uint32_t hi = std::max(level[u], level[v]);
        const uint32_t lo = std::min(level[u], level[v]);
        EXPECT_LE(hi - lo, 1u) << "edge (" << v << "," << u << ")";
      }
      has_parent = has_parent || (level[u] != kInfinity && level[u] + 1 == level[v]);
    }
    EXPECT_TRUE(has_parent) << "vertex " << v << " at level " << level[v];
  }
}

// SSSP distances satisfy the relaxed triangle inequality on every edge:
// dist[v] <= dist[u] + w(u, v), with equality witnessed by some parent.
TEST_P(RandomGraphProperties, SsspTriangleInequality) {
  const auto result = RunSssp(graph_, 0, MakeK40(), options_);
  ASSERT_TRUE(result.stats.ok());
  const auto& dist = result.values;
  for (VertexId u = 0; u < graph_.vertex_count(); ++u) {
    if (dist[u] == kInfinity) {
      continue;
    }
    const auto nbrs = graph_.out().Neighbors(u);
    const auto wts = graph_.out().NeighborWeights(u);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      ASSERT_NE(dist[nbrs[i]], kInfinity) << "reachable neighbor unreached";
      EXPECT_LE(dist[nbrs[i]], dist[u] + wts[i])
          << "edge (" << u << "," << nbrs[i] << ") violates relaxation";
    }
  }
}

// PageRank: every rank at least the teleport base, total mass bounded by 1.
TEST_P(RandomGraphProperties, PageRankMassAndPositivity) {
  const auto result = RunPageRank(graph_, MakeK40(), options_, 1e-10);
  ASSERT_TRUE(result.stats.ok());
  const double base = 0.15 / graph_.vertex_count();
  double total = 0.0;
  for (const auto& value : result.values) {
    EXPECT_GE(value.rank, base * (1 - 1e-9));
    total += value.rank;
  }
  EXPECT_LE(total, 1.0 + 1e-6);
  EXPECT_GT(total, 0.5) << "undirected graph should retain most mass";
}

// WCC labels: endpoints of every edge share a label, and each label is the
// minimum id of its member set.
TEST_P(RandomGraphProperties, WccLabelsAreClosedAndMinimal) {
  const auto result = RunWcc(graph_, MakeK40(), options_);
  ASSERT_TRUE(result.stats.ok());
  const auto& label = result.values;
  for (VertexId v = 0; v < graph_.vertex_count(); ++v) {
    EXPECT_LE(label[v], v) << "label is the smallest member id";
    for (VertexId u : graph_.out().Neighbors(v)) {
      EXPECT_EQ(label[u], label[v]);
    }
  }
}

// k-Core: result is a fixpoint — no survivor has fewer than k live
// neighbors, and no removed vertex could have survived (checked via oracle).
TEST_P(RandomGraphProperties, KCoreFixpoint) {
  const uint32_t k = 6;
  const auto result = RunKCore(graph_, k, MakeK40(), options_);
  ASSERT_TRUE(result.stats.ok());
  const auto oracle = CpuKCoreRemoved(graph_, k);
  for (VertexId v = 0; v < graph_.vertex_count(); ++v) {
    ASSERT_EQ(result.values[v].removed, oracle[v]) << v;
  }
}

// Engine telemetry invariants: pattern strings and logs are always the same
// length as the iteration count, and edge totals are conserved.
TEST_P(RandomGraphProperties, TelemetryShapeInvariants) {
  const auto result = RunSssp(graph_, 0, MakeK40(), options_);
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.stats.filter_pattern.size(), result.stats.iterations);
  EXPECT_EQ(result.stats.direction_pattern.size(), result.stats.iterations);
  EXPECT_EQ(result.stats.iteration_logs.size(), result.stats.iterations);
  uint64_t edges = 0;
  for (const auto& log : result.stats.iteration_logs) {
    edges += log.edges_processed;
  }
  EXPECT_EQ(edges, result.stats.total_edges_processed);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomGraphProperties,
    ::testing::Values(Workload{"rmat1", 11, true}, Workload{"rmat2", 23, true},
                      Workload{"rmat3", 37, true}, Workload{"uni1", 41, false},
                      Workload{"uni2", 59, false}, Workload{"uni3", 71, false}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace simdx
