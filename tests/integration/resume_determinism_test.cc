// Crash-at-every-iteration resume sweep — the acceptance harness for the
// checkpoint/resume layer.
//
// For every swept configuration ({BFS, SSSP, PageRank, k-Core} × host
// threads {1, 3, 8} × replay contract where the program supports both), the
// harness:
//
//   1. Runs uninterrupted and records the bench StatsFingerprint — the ONE
//      definition of "identical run" (counters, simulated time, patterns,
//      raw value bytes; control accounting excluded by design).
//   2. Re-runs with checkpointing armed at every iteration and asserts the
//      observer changed nothing (checkpoint purity).
//   3. For EVERY iteration k of the uninterrupted run, injects a one-shot
//      iteration-start fault at k and drives RobustRun (checkpoint every
//      iteration, 2 attempts): the run must die, resume from the k
//      checkpoint, finish as kResumed, and fingerprint-match the
//      uninterrupted run bit for bit.
//   4. Injects mid-stage faults (collect/replay/apply) at a push iteration:
//      same contract — a crash INSIDE a stage resumes from the iteration
//      boundary before it.
//   5. Arms a checkpoint CORRUPTION (simulated torn write) at a mid
//      iteration plus a fault one iteration later: RobustRun must reject the
//      poisoned snapshot by CRC, fall back to the previous good one, and
//      still converge to the identical fingerprint.
//
// SSSP checkpoints its delta-stepping scheduler state (pending buckets);
// k-Core pins the order-sensitive per-record contract; PageRank pins the
// floating-point value path and (with pre-combining) the kPerDestination
// contract across a resume.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algos/bfs.h"
#include "algos/kcore.h"
#include "algos/pagerank.h"
#include "algos/sssp.h"
#include "bench/common.h"
#include "core/checkpoint.h"
#include "core/control.h"
#include "core/engine.h"
#include "core/fault.h"
#include "core/robust.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "simt/device.h"

namespace simdx {
namespace {

constexpr uint32_t kThreads[] = {1, 3, 8};

EngineOptions BaseOptions(uint32_t threads, bool pre_combine) {
  EngineOptions o;
  o.sim_worker_threads = 64;
  o.host_threads = threads;
  o.parallel_replay_min_records = 0;  // tiny graphs must still partition
  o.pre_combine_replay = pre_combine;
  o.pre_combine_collect = pre_combine;
  o.pre_combine_collect_min_fold = 0.0;
  return o;
}

ArmedFault At(FaultPoint point, uint32_t iteration) {
  ArmedFault f;
  f.point = point;
  f.iteration = iteration;
  return f;
}

// Steps 1-5 for one (program, graph, options) cell.
template <typename Program>
void SweepCell(const std::string& label, const Graph& g,
               const Program& program, const EngineOptions& options) {
  SCOPED_TRACE(label);

  // 1. The uninterrupted oracle.
  RunResult<typename Program::Value> plain;
  {
    Engine<Program> engine(g, MakeK40(), options);
    plain = engine.Run(program);
  }
  ASSERT_TRUE(plain.stats.ok());
  const std::string oracle = bench::StatsFingerprint(plain);
  const uint32_t iters = plain.stats.iterations;
  ASSERT_GE(iters, 2u) << "graph too small to exercise resume";

  // 2. Checkpoint purity: observing every boundary changes nothing.
  {
    RunControl control;
    control.checkpoint_every = 1;
    uint32_t valid = 0;
    control.on_checkpoint = [&](const Checkpoint& cp) {
      valid += cp.Validate(nullptr) ? 1 : 0;
      return true;
    };
    Engine<Program> engine(g, MakeK40(), options);
    const auto watched = engine.Run(program, control);
    ASSERT_TRUE(watched.stats.ok());
    EXPECT_EQ(bench::StatsFingerprint(watched), oracle);
    EXPECT_EQ(watched.stats.checkpoints_written, valid);
    EXPECT_GE(valid, iters);
  }

  // 3. Crash at EVERY iteration boundary, resume, compare.
  for (uint32_t k = 0; k <= iters; ++k) {
    FaultRegistry faults;
    faults.Arm(At(FaultPoint::kIterationStart, k));
    RobustRunOptions opts;
    opts.checkpoint_every = 1;
    opts.max_attempts = 2;
    opts.faults = &faults;
    Engine<Program> engine(g, MakeK40(), options);
    const auto r = RobustRun(engine, program, opts);
    ASSERT_TRUE(r.stats.ok()) << "crash at iteration " << k;
    EXPECT_EQ(r.stats.outcome, RunOutcome::kResumed) << "iteration " << k;
    EXPECT_EQ(r.stats.attempts, 2u) << "iteration " << k;
    EXPECT_EQ(r.stats.resumes, 1u) << "iteration " << k;
    EXPECT_EQ(r.stats.resume_iteration, k) << "iteration " << k;
    EXPECT_EQ(bench::StatsFingerprint(r), oracle) << "iteration " << k;
  }

  // 4. Mid-stage crashes at the first push iteration (the collect/replay/
  // apply hooks live in the push pipeline).
  const size_t push_at = plain.stats.direction_pattern.find('p');
  if (push_at != std::string::npos) {
    const auto k = static_cast<uint32_t>(push_at);
    for (FaultPoint point :
         {FaultPoint::kCollect, FaultPoint::kReplay, FaultPoint::kApply,
          FaultPoint::kFrontier}) {
      FaultRegistry faults;
      faults.Arm(At(point, k));
      RobustRunOptions opts;
      opts.checkpoint_every = 1;
      opts.max_attempts = 2;
      opts.faults = &faults;
      Engine<Program> engine(g, MakeK40(), options);
      const auto r = RobustRun(engine, program, opts);
      ASSERT_TRUE(r.stats.ok()) << ToString(point) << " at " << k;
      EXPECT_EQ(r.stats.outcome, RunOutcome::kResumed)
          << ToString(point) << " at " << k;
      EXPECT_EQ(bench::StatsFingerprint(r), oracle)
          << ToString(point) << " at " << k;
    }
  }

  // 5. Torn checkpoint write at iteration k, crash at k (the boundary hands
  // out the poisoned snapshot, then the fault kills the run before any newer
  // snapshot exists): RobustRun must reject the torn bytes by CRC and
  // recover from the k-1 checkpoint.
  {
    const uint32_t k = std::max(1u, iters / 2);
    FaultRegistry faults;
    ArmedFault corrupt = At(FaultPoint::kCheckpointWrite, k);
    corrupt.corrupt_section = 1;  // the values section
    corrupt.seed = 13;
    faults.Arm(corrupt);
    faults.Arm(At(FaultPoint::kIterationStart, k));
    RobustRunOptions opts;
    opts.checkpoint_every = 1;
    opts.max_attempts = 2;
    opts.faults = &faults;
    Engine<Program> engine(g, MakeK40(), options);
    const auto r = RobustRun(engine, program, opts);
    ASSERT_TRUE(r.stats.ok()) << "torn write at " << k;
    EXPECT_EQ(r.stats.outcome, RunOutcome::kResumed);
    // Resumed from the last GOOD snapshot — the one before the torn write.
    EXPECT_EQ(r.stats.resume_iteration, k - 1);
    EXPECT_EQ(bench::StatsFingerprint(r), oracle);
  }
}

TEST(ResumeDeterminismTest, BfsPerRecord) {
  const Graph g = Graph::FromEdges(GenerateRmat(7, 8, 3), false);
  BfsProgram program;
  for (uint32_t threads : kThreads) {
    SweepCell("bfs/per_record/t" + std::to_string(threads), g, program,
              BaseOptions(threads, false));
  }
}

TEST(ResumeDeterminismTest, BfsPreCombined) {
  const Graph g = Graph::FromEdges(GenerateRmat(7, 8, 3), false);
  BfsProgram program;
  for (uint32_t threads : kThreads) {
    SweepCell("bfs/pre_combine/t" + std::to_string(threads), g, program,
              BaseOptions(threads, true));
  }
}

TEST(ResumeDeterminismTest, SsspWithSchedulerState) {
  // Grid road: weighted, high diameter — the delta-stepping pending buckets
  // actually fill and refill, so the kProgramState section carries real
  // state across every crash point.
  const Graph g = Graph::FromEdges(GenerateGridRoad(16, 6, 7), false);
  SsspProgram program;
  for (uint32_t threads : kThreads) {
    SweepCell("sssp/per_record/t" + std::to_string(threads), g, program,
              BaseOptions(threads, false));
  }
}

TEST(ResumeDeterminismTest, PageRankPerRecord) {
  const Graph g = Graph::FromEdges(GenerateRmat(6, 8, 5), false);
  PageRankProgram program;
  program.graph = &g;
  program.epsilon = 1e-4;
  for (uint32_t threads : kThreads) {
    SweepCell("pagerank/per_record/t" + std::to_string(threads), g, program,
              BaseOptions(threads, false));
  }
}

TEST(ResumeDeterminismTest, PageRankPreCombined) {
  const Graph g = Graph::FromEdges(GenerateRmat(6, 8, 5), false);
  PageRankProgram program;
  program.graph = &g;
  program.epsilon = 1e-4;
  for (uint32_t threads : kThreads) {
    SweepCell("pagerank/pre_combine/t" + std::to_string(threads), g, program,
              BaseOptions(threads, true));
  }
}

TEST(ResumeDeterminismTest, KCoreOrderSensitive) {
  const Graph g = Graph::FromEdges(GenerateRmat(7, 8, 9), false);
  KCoreProgram program;
  program.graph = &g;
  // Half the vertices sit below degree 16 on this graph, so the peel
  // cascades over several iterations (k=4 would converge in one — the whole
  // graph is already a 4-core).
  program.k = 16;
  for (uint32_t threads : kThreads) {
    SweepCell("kcore/per_record/t" + std::to_string(threads), g, program,
              BaseOptions(threads, false));
  }
}

}  // namespace
}  // namespace simdx
