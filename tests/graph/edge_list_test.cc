#include "graph/edge_list.h"

#include <gtest/gtest.h>

namespace simdx {
namespace {

TEST(EdgeListTest, StartsEmpty) {
  EdgeList list;
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.size(), 0u);
  EXPECT_EQ(list.MaxVertexPlusOne(), 0u);
}

TEST(EdgeListTest, AddAndIndex) {
  EdgeList list;
  list.Add(1, 2, 7);
  list.Add(3, 0, 9);
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], (Edge{1, 2, 7}));
  EXPECT_EQ(list[1], (Edge{3, 0, 9}));
  EXPECT_EQ(list.MaxVertexPlusOne(), 4u);
}

TEST(EdgeListTest, SortBySourceOrdersBySourceThenDestination) {
  EdgeList list;
  list.Add(2, 1);
  list.Add(0, 5);
  list.Add(2, 0);
  list.Add(0, 2);
  list.SortBySource();
  EXPECT_EQ(list[0].src, 0u);
  EXPECT_EQ(list[0].dst, 2u);
  EXPECT_EQ(list[1].dst, 5u);
  EXPECT_EQ(list[2].src, 2u);
  EXPECT_EQ(list[2].dst, 0u);
  EXPECT_EQ(list[3].dst, 1u);
}

TEST(EdgeListTest, DedupRemovesDuplicatePairsKeepingSmallestWeight) {
  EdgeList list;
  list.Add(0, 1, 9);
  list.Add(0, 1, 3);
  list.Add(0, 1, 5);
  list.Add(1, 2, 4);
  list.DedupAndDropSelfLoops();
  ASSERT_EQ(list.size(), 2u);
  EXPECT_EQ(list[0], (Edge{0, 1, 3}));
  EXPECT_EQ(list[1], (Edge{1, 2, 4}));
}

TEST(EdgeListTest, DedupDropsSelfLoops) {
  EdgeList list;
  list.Add(0, 0);
  list.Add(1, 1);
  list.Add(0, 1);
  list.DedupAndDropSelfLoops();
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].src, 0u);
  EXPECT_EQ(list[0].dst, 1u);
}

TEST(EdgeListTest, SymmetrizeAppendsReverses) {
  EdgeList list;
  list.Add(0, 1, 4);
  list.Add(2, 3, 6);
  list.Symmetrize();
  ASSERT_EQ(list.size(), 4u);
  EXPECT_EQ(list[2], (Edge{1, 0, 4}));
  EXPECT_EQ(list[3], (Edge{3, 2, 6}));
}

TEST(EdgeListTest, RandomizeWeightsInRangeAndDeterministic) {
  EdgeList a;
  for (int i = 0; i < 100; ++i) {
    a.Add(i, i + 1);
  }
  EdgeList b = a;
  a.RandomizeWeights(16, 42);
  b.RandomizeWeights(16, 42);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_GE(a[i].weight, 1u);
    EXPECT_LE(a[i].weight, 16u);
    EXPECT_EQ(a[i].weight, b[i].weight) << "same seed must give same weights";
  }
}

TEST(EdgeListTest, RandomizeWeightsDiffersAcrossSeeds) {
  EdgeList a;
  for (int i = 0; i < 64; ++i) {
    a.Add(i, i + 1);
  }
  EdgeList b = a;
  a.RandomizeWeights(1000000, 1);
  b.RandomizeWeights(1000000, 2);
  int differing = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    differing += a[i].weight != b[i].weight;
  }
  EXPECT_GT(differing, 0);
}

}  // namespace
}  // namespace simdx
