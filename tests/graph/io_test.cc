#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.h"

namespace simdx {
namespace {

class IoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const auto dir = std::filesystem::temp_directory_path() / "simdx_io_test";
    std::filesystem::create_directories(dir);
    return (dir / name).string();
  }
};

TEST_F(IoTest, TextRoundTrip) {
  EdgeList original = GenerateRmat(6, 4, 9);
  const std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(WriteEdgeListText(original, path));
  const auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i], original[i]);
  }
}

TEST_F(IoTest, BinaryRoundTrip) {
  EdgeList original = GenerateUniformRandom(100, 500, 4);
  const std::string path = TempPath("roundtrip.bin");
  ASSERT_TRUE(WriteEdgeListBinary(original, path));
  const auto loaded = ReadEdgeListBinary(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ((*loaded)[i], original[i]);
  }
}

TEST_F(IoTest, TextSkipsCommentsAndDefaultsWeight) {
  const std::string path = TempPath("comments.txt");
  {
    std::ofstream out(path);
    out << "# a comment\n% another\n0 1\n2 3 7\n";
  }
  const auto loaded = ReadEdgeListText(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0], (Edge{0, 1, 1}));
  EXPECT_EQ((*loaded)[1], (Edge{2, 3, 7}));
}

TEST_F(IoTest, TextRejectsMalformedLine) {
  const std::string path = TempPath("bad.txt");
  {
    std::ofstream out(path);
    out << "0 not_a_number\n";
  }
  EXPECT_FALSE(ReadEdgeListText(path).has_value());
}

TEST_F(IoTest, MissingFileReturnsNullopt) {
  EXPECT_FALSE(ReadEdgeListText(TempPath("does_not_exist.txt")).has_value());
  EXPECT_FALSE(ReadEdgeListBinary(TempPath("does_not_exist.bin")).has_value());
}

TEST_F(IoTest, BinaryRejectsWrongMagic) {
  const std::string path = TempPath("wrong_magic.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTMAGIC" << std::string(16, '\0');
  }
  EXPECT_FALSE(ReadEdgeListBinary(path).has_value());
}

TEST_F(IoTest, BinaryRejectsTruncatedFile) {
  EdgeList original;
  original.Add(0, 1, 2);
  original.Add(1, 2, 3);
  const std::string full = TempPath("full.bin");
  ASSERT_TRUE(WriteEdgeListBinary(original, full));
  // Truncate mid-record.
  std::ifstream in(full, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)), {});
  const std::string truncated_path = TempPath("truncated.bin");
  std::ofstream out(truncated_path, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() - 5));
  out.close();
  EXPECT_FALSE(ReadEdgeListBinary(truncated_path).has_value());
}

TEST_F(IoTest, EmptyListRoundTrips) {
  const std::string path = TempPath("empty.bin");
  ASSERT_TRUE(WriteEdgeListBinary(EdgeList{}, path));
  const auto loaded = ReadEdgeListBinary(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->empty());
}

}  // namespace
}  // namespace simdx
