#include "graph/presets.h"

#include <gtest/gtest.h>

#include "graph/stats.h"

namespace simdx {
namespace {

TEST(PresetsTest, ElevenPresetsInPaperOrder) {
  const auto& presets = AllPresets();
  ASSERT_EQ(presets.size(), 11u);
  EXPECT_EQ(presets.front().abbrev, "FB");
  EXPECT_EQ(presets.back().abbrev, "TW");
}

TEST(PresetsTest, AllLoadNonEmptyAndValid) {
  for (const PresetInfo& info : AllPresets()) {
    const Graph g = LoadPreset(info.abbrev);
    EXPECT_GT(g.vertex_count(), 0u) << info.abbrev;
    EXPECT_GT(g.edge_count(), 0u) << info.abbrev;
    EXPECT_TRUE(g.out().Validate()) << info.abbrev;
    EXPECT_EQ(g.directed(), info.directed) << info.abbrev;
    EXPECT_EQ(g.name(), info.abbrev);
  }
}

TEST(PresetsTest, LoadingIsDeterministic) {
  const Graph a = LoadPreset("LJ");
  const Graph b = LoadPreset("LJ");
  EXPECT_EQ(a.edge_count(), b.edge_count());
  EXPECT_EQ(a.out().col_indices(), b.out().col_indices());
}

// Class structure is what the evaluation depends on: road graphs must be
// high diameter / low degree, social graphs skewed / low diameter.
TEST(PresetsTest, RoadClassHasHighDiameter) {
  for (const char* name : {"ER", "RC"}) {
    const Graph g = LoadPreset(name);
    EXPECT_GE(ApproxDiameter(g), 100u) << name;
    EXPECT_LE(ComputeOutDegreeStats(g).max, 10u) << name;
  }
}

TEST(PresetsTest, SocialClassIsSkewed) {
  for (const char* name : {"FB", "OR", "TW"}) {
    const Graph g = LoadPreset(name);
    EXPECT_GT(ComputeOutDegreeStats(g).skew(), 8.0) << name;
  }
}

TEST(PresetsTest, ErIsLargestVertexCount) {
  // Europe-osm dominates vertex count in Table 3; the scaled family keeps
  // that ordering.
  const VertexId er = LoadPreset("ER").vertex_count();
  for (const char* name : {"FB", "LJ", "OR", "PK", "RD", "RC", "RM"}) {
    EXPECT_GT(er, LoadPreset(name).vertex_count()) << name;
  }
}

}  // namespace
}  // namespace simdx
