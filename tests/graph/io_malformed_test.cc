// Malformed-input matrix for the typed-status edge-list readers: every
// rejection class, with the file/line (or byte-offset) context the status
// carries. The legacy optional-returning wrappers share the same parser, so
// this matrix is the error-surface contract for both.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>

#include "graph/edge_list.h"
#include "graph/io.h"

namespace simdx {
namespace {

class IoMalformedTest : public ::testing::Test {
 protected:
  std::string Write(const std::string& name, const std::string& content) {
    const auto dir =
        std::filesystem::temp_directory_path() / "simdx_io_malformed_test";
    std::filesystem::create_directories(dir);
    const std::string path = (dir / name).string();
    std::ofstream out(path, std::ios::binary);
    out << content;
    return path;
  }

  IoStatus ReadText(const std::string& name, const std::string& content) {
    EdgeList edges;
    return ReadEdgeListTextStatus(Write(name, content), &edges);
  }

  IoStatus ReadBinary(const std::string& name, const std::string& content) {
    EdgeList edges;
    return ReadEdgeListBinaryStatus(Write(name, content), &edges);
  }
};

TEST_F(IoMalformedTest, MissingFileReportsOpenFailed) {
  EdgeList edges;
  const IoStatus s = ReadEdgeListTextStatus("/nonexistent/simdx.txt", &edges);
  EXPECT_EQ(s.code, IoStatus::Code::kOpenFailed);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.path, "/nonexistent/simdx.txt");
}

TEST_F(IoMalformedTest, OneColumnLineIsTruncatedWithLineNumber) {
  const IoStatus s = ReadText("one_col.txt", "0 1\n# fine\n42\n2 3\n");
  EXPECT_EQ(s.code, IoStatus::Code::kTruncated);
  EXPECT_EQ(s.line, 3u);  // 1-based, comments counted
}

TEST_F(IoMalformedTest, FourColumnsRejected) {
  const IoStatus s = ReadText("four_col.txt", "0 1 2 3\n");
  EXPECT_EQ(s.code, IoStatus::Code::kNonNumeric);
  EXPECT_EQ(s.line, 1u);
}

TEST_F(IoMalformedTest, NonNumericTokensNameTheToken) {
  {
    const IoStatus s = ReadText("src.txt", "x 1\n");
    EXPECT_EQ(s.code, IoStatus::Code::kNonNumeric);
    EXPECT_NE(s.detail.find("\"x\""), std::string::npos) << s.ToString();
  }
  {
    const IoStatus s = ReadText("dst.txt", "0 1\n5 abc\n");
    EXPECT_EQ(s.code, IoStatus::Code::kNonNumeric);
    EXPECT_EQ(s.line, 2u);
    EXPECT_NE(s.detail.find("\"abc\""), std::string::npos);
  }
  {
    const IoStatus s = ReadText("weight.txt", "0 1 1.5\n");
    EXPECT_EQ(s.code, IoStatus::Code::kNonNumeric);  // floats are junk here
  }
}

TEST_F(IoMalformedTest, NegativeNumbersAreErrorsNotWraps) {
  // istream >> would wrap -1 to 4294967295; the strict parser refuses.
  const IoStatus s = ReadText("negative.txt", "0 -1\n");
  EXPECT_EQ(s.code, IoStatus::Code::kNonNumeric);
  EXPECT_EQ(s.line, 1u);
}

TEST_F(IoMalformedTest, SentinelAndBeyondVertexIdsRejected) {
  const uint64_t sentinel = kInvalidVertex;
  {
    const IoStatus s = ReadText(
        "sentinel.txt", std::to_string(sentinel) + " 1\n");
    EXPECT_EQ(s.code, IoStatus::Code::kVertexOutOfRange);
  }
  {
    const IoStatus s = ReadText("huge_id.txt", "0 99999999999999999999\n");
    // 20 digits overflows uint64 → non-numeric by the strict parse.
    EXPECT_EQ(s.code, IoStatus::Code::kNonNumeric);
  }
  {
    const IoStatus s = ReadText("beyond.txt", "0 4294967296\n");
    EXPECT_EQ(s.code, IoStatus::Code::kVertexOutOfRange);
  }
}

TEST_F(IoMalformedTest, WeightOverflowRejected) {
  const IoStatus s = ReadText("weight_of.txt", "0 1 4294967296\n");
  EXPECT_EQ(s.code, IoStatus::Code::kWeightOutOfRange);
  EXPECT_EQ(s.line, 1u);
}

TEST_F(IoMalformedTest, ValidTextStillParsesAroundTheMatrix) {
  EdgeList edges;
  const IoStatus s = ReadEdgeListTextStatus(
      Write("good.txt", "# comment\n\n  0\t1 \n1 2 7\r\n% tail comment\n"),
      &edges);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 1, 1}));
  EXPECT_EQ(edges[1], (Edge{1, 2, 7}));
}

// --- binary container ---

std::string BinaryBlob(uint64_t declared_count,
                       const std::string& records,
                       const std::string& magic = "SIMDXEL1") {
  std::string blob = magic;
  blob.append(reinterpret_cast<const char*>(&declared_count),
              sizeof(declared_count));
  blob += records;
  return blob;
}

std::string Record(uint32_t src, uint32_t dst, uint32_t weight) {
  std::string r;
  r.append(reinterpret_cast<const char*>(&src), 4);
  r.append(reinterpret_cast<const char*>(&dst), 4);
  r.append(reinterpret_cast<const char*>(&weight), 4);
  return r;
}

TEST_F(IoMalformedTest, BinaryTooSmallForHeader) {
  const IoStatus s = ReadBinary("tiny.bin", "SIMD");
  EXPECT_EQ(s.code, IoStatus::Code::kTruncated);
}

TEST_F(IoMalformedTest, BinaryWrongMagic) {
  const IoStatus s = ReadBinary("magic.bin", BinaryBlob(0, "", "NOTMAGIC"));
  EXPECT_EQ(s.code, IoStatus::Code::kBadMagic);
}

TEST_F(IoMalformedTest, BinaryHostileCountRejectedBeforeAllocation) {
  // Declares ~10^18 records in a 28-byte file: must fail by arithmetic on
  // the file size, never by attempting the Reserve.
  const IoStatus s = ReadBinary(
      "hostile.bin", BinaryBlob(uint64_t{1} << 60, Record(0, 1, 1)));
  EXPECT_EQ(s.code, IoStatus::Code::kCountMismatch);
  EXPECT_EQ(s.line, 16u);  // byte offset of the record area
}

TEST_F(IoMalformedTest, BinaryTruncatedRecordAreaCaughtByCountCheck) {
  // Two records declared, the second cut short. The count-vs-file-size
  // validation (the same arithmetic that defuses hostile counts) catches
  // this BEFORE any record is read — the mid-record kTruncated path is
  // defense-in-depth for files shrinking while being read.
  const std::string records = Record(0, 1, 1) + Record(1, 2, 2);
  const IoStatus s = ReadBinary(
      "midrec.bin",
      BinaryBlob(2, records.substr(0, records.size() - 5)));
  EXPECT_EQ(s.code, IoStatus::Code::kCountMismatch);
  EXPECT_EQ(s.line, 16u);  // byte offset of the record area
  EXPECT_NE(s.detail.find("1 fit"), std::string::npos) << s.ToString();
}

TEST_F(IoMalformedTest, BinaryOutOfRangeVertexIdReportsOffset) {
  const IoStatus s = ReadBinary(
      "bad_id.bin",
      BinaryBlob(2, Record(0, 1, 1) + Record(kInvalidVertex, 2, 2)));
  EXPECT_EQ(s.code, IoStatus::Code::kVertexOutOfRange);
  EXPECT_EQ(s.line, 16u + 12u);
}

TEST_F(IoMalformedTest, BinaryTrailingBytesBeyondDeclaredCountAreIgnored) {
  // The count is the contract; trailing bytes (e.g. a future footer) are
  // not an error.
  EdgeList edges;
  const IoStatus s = ReadEdgeListBinaryStatus(
      Write("trailing.bin", BinaryBlob(1, Record(3, 4, 5) + "extra")), &edges);
  ASSERT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0], (Edge{3, 4, 5}));
}

TEST_F(IoMalformedTest, StatusToStringCarriesPathLineAndMessage) {
  const IoStatus s = ReadText("ctx.txt", "0 1\nbad line here\n");
  EXPECT_EQ(s.code, IoStatus::Code::kNonNumeric);
  const std::string printed = s.ToString();
  EXPECT_NE(printed.find("ctx.txt:2:"), std::string::npos) << printed;
  EXPECT_NE(printed.find("non-numeric"), std::string::npos) << printed;
}

TEST_F(IoMalformedTest, LegacyWrappersStillReturnNulloptOnFailure) {
  const std::string path = Write("legacy.txt", "0 junk\n");
  EXPECT_FALSE(ReadEdgeListText(path).has_value());
}

}  // namespace
}  // namespace simdx
