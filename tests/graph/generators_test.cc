#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/graph.h"
#include "graph/stats.h"

namespace simdx {
namespace {

TEST(GeneratorsTest, RmatHasRequestedScale) {
  const EdgeList list = GenerateRmat(10, 8, /*seed=*/1);
  EXPECT_EQ(list.size(), 8u << 10);
  EXPECT_LE(list.MaxVertexPlusOne(), 1u << 10);
}

TEST(GeneratorsTest, RmatDeterministicPerSeed) {
  const EdgeList a = GenerateRmat(8, 4, 42);
  const EdgeList b = GenerateRmat(8, 4, 42);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
  }
}

TEST(GeneratorsTest, RmatIsSkewed) {
  const Graph g = Graph::FromEdges(GenerateRmat(12, 16, 7), false);
  const DegreeStats s = ComputeOutDegreeStats(g);
  EXPECT_GT(s.skew(), 10.0) << "R-MAT must produce hub vertices";
}

TEST(GeneratorsTest, UniformRandomIsNotSkewed) {
  const Graph g =
      Graph::FromEdges(GenerateUniformRandom(4096, 65536, 7), false);
  const DegreeStats s = ComputeOutDegreeStats(g);
  EXPECT_LT(s.skew(), 5.0) << "uniform random degrees concentrate at the mean";
}

TEST(GeneratorsTest, GridRoadHasHighDiameterAndBoundedDegree) {
  const Graph g = Graph::FromEdges(GenerateGridRoad(80, 20, 3), false);
  const DegreeStats s = ComputeOutDegreeStats(g);
  EXPECT_LE(s.max, 8u);  // 4 grid + a few chords
  EXPECT_GE(ApproxDiameter(g), 90u);  // ~width + height, minus chord shortcuts
}

TEST(GeneratorsTest, KroneckerSpreadsHubs) {
  const EdgeList list = GenerateKronecker(10, 8, 11);
  EXPECT_EQ(list.size(), 8u << 10);
  // Relabeling must keep endpoints in range.
  EXPECT_LE(list.MaxVertexPlusOne(), 1u << 10);
}

TEST(GeneratorsTest, SmallWorldDegreeRegular) {
  const EdgeList list = GenerateSmallWorld(1000, 8, 0.1, 5);
  EXPECT_EQ(list.size(), 8000u);
}

TEST(GeneratorsTest, ChainStarCompleteTreeShapes) {
  EXPECT_EQ(GenerateChain(5).size(), 4u);
  EXPECT_EQ(GenerateStar(7).size(), 7u);
  EXPECT_EQ(GenerateComplete(5).size(), 10u);
  EXPECT_EQ(GenerateBinaryTree(4).size(), 14u);  // 15 vertices, 14 edges
}

TEST(GeneratorsTest, ChainGraphDiameterExact) {
  const Graph g = Graph::FromEdges(GenerateChain(50), false);
  EXPECT_EQ(ApproxDiameter(g), 49u);
}

TEST(GeneratorsTest, PaperFigure1GraphShape) {
  const EdgeList list = PaperFigure1Graph();
  EXPECT_EQ(list.size(), 10u);  // ten undirected edges
  EXPECT_EQ(list.MaxVertexPlusOne(), 9u);  // vertices a..i
}

TEST(GeneratorsTest, WeightsWithinCeiling) {
  // Bind the list first: ranging over `.edges()` of a temporary dangles.
  const EdgeList list = GenerateRmat(8, 4, 3, RmatParams{}, 32);
  for (const Edge& e : list.edges()) {
    EXPECT_GE(e.weight, 1u);
    EXPECT_LE(e.weight, 32u);
  }
}

}  // namespace
}  // namespace simdx
