#include "graph/stats.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace simdx {
namespace {

TEST(StatsTest, DegreeStatsOnStar) {
  const Graph g = Graph::FromEdges(GenerateStar(9), false);  // hub + 9 leaves
  const DegreeStats s = ComputeOutDegreeStats(g);
  EXPECT_EQ(s.max, 9u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 18.0 / 10.0);
  EXPECT_EQ(s.median, 1u);
  EXPECT_GT(s.skew(), 4.0);
}

TEST(StatsTest, DegreeStatsEmptyGraph) {
  const Graph g;
  const DegreeStats s = ComputeOutDegreeStats(g);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.skew(), 0.0);
}

TEST(StatsTest, EccentricityOnChain) {
  const Graph g = Graph::FromEdges(GenerateChain(10), false);
  EXPECT_EQ(BfsEccentricity(g, 0), 9u);
  EXPECT_EQ(BfsEccentricity(g, 5), 5u);
}

TEST(StatsTest, ApproxDiameterExactOnTreeLikeShapes) {
  EXPECT_EQ(ApproxDiameter(Graph::FromEdges(GenerateChain(33), false)), 32u);
  EXPECT_EQ(ApproxDiameter(Graph::FromEdges(GenerateStar(6), false)), 2u);
  // Complete graph: everything one hop away.
  EXPECT_EQ(ApproxDiameter(Graph::FromEdges(GenerateComplete(8), false)), 1u);
}

TEST(StatsTest, ComponentCount) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(2, 3);
  list.Add(3, 4);
  const Graph g = Graph::FromEdges(list, false, /*vertex_count=*/7);
  // {0,1}, {2,3,4}, {5}, {6}
  EXPECT_EQ(ComponentCount(g), 4u);
}

TEST(StatsTest, ComponentCountSingleComponent) {
  const Graph g = Graph::FromEdges(GenerateGridRoad(10, 10, 1), false);
  EXPECT_EQ(ComponentCount(g), 1u);
}

TEST(StatsTest, ReachableCountDirectedChain) {
  const Graph g = Graph::FromEdges(GenerateChain(10), /*directed=*/true);
  EXPECT_EQ(ReachableCount(g, 0), 10u);
  EXPECT_EQ(ReachableCount(g, 9), 1u);
  EXPECT_EQ(ReachableCount(g, 5), 5u);
}

}  // namespace
}  // namespace simdx
