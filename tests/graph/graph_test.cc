#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace simdx {
namespace {

TEST(GraphTest, UndirectedSymmetrizes) {
  EdgeList list;
  list.Add(0, 1, 2);
  list.Add(1, 2, 3);
  const Graph g = Graph::FromEdges(list, /*directed=*/false);
  EXPECT_FALSE(g.directed());
  EXPECT_EQ(g.vertex_count(), 3u);
  EXPECT_EQ(g.edge_count(), 4u);  // each undirected edge stored twice
  EXPECT_EQ(g.OutDegree(1), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
  // in() aliases out() for undirected graphs.
  EXPECT_EQ(&g.in(), &g.out());
}

TEST(GraphTest, DirectedKeepsBothCsrs) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(0, 2);
  const Graph g = Graph::FromEdges(list, /*directed=*/true);
  EXPECT_TRUE(g.directed());
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(0), 0u);
  EXPECT_EQ(g.InDegree(1), 1u);
  EXPECT_NE(&g.in(), &g.out());
}

TEST(GraphTest, UndirectedWeightsPreservedBothWays) {
  EdgeList list;
  list.Add(0, 1, 9);
  const Graph g = Graph::FromEdges(list, false);
  EXPECT_EQ(g.out().NeighborWeights(0)[0], 9u);
  EXPECT_EQ(g.out().NeighborWeights(1)[0], 9u);
}

TEST(GraphTest, DuplicateEdgesCollapse) {
  EdgeList list;
  list.Add(0, 1, 5);
  list.Add(0, 1, 2);
  const Graph g = Graph::FromEdges(list, true);
  EXPECT_EQ(g.edge_count(), 1u);
  EXPECT_EQ(g.out().NeighborWeights(0)[0], 2u);  // smallest weight kept
}

TEST(GraphTest, EdgeListFootprintLargerThanCsr) {
  const Graph g =
      Graph::FromEdges(GenerateUniformRandom(1000, 20000, 1), /*directed=*/true);
  // The paper's Table 1 rationale: CSR saves ~50% over the edge list (our
  // directed graphs store two CSRs, so compare per-representation).
  EXPECT_GT(g.EdgeListFootprintBytes(), g.CsrFootprintBytes() / 2);
}

TEST(GraphTest, NamePropagates) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false, 0, "chain");
  EXPECT_EQ(g.name(), "chain");
}

TEST(GraphTest, VertexCountOverride) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false, 100);
  EXPECT_EQ(g.vertex_count(), 100u);
  EXPECT_EQ(g.OutDegree(99), 0u);
}

}  // namespace
}  // namespace simdx
