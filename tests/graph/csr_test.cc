#include "graph/csr.h"

#include <gtest/gtest.h>

#include "graph/generators.h"

namespace simdx {
namespace {

TEST(CsrTest, EmptyGraph) {
  Csr csr = Csr::FromEdges(EdgeList{});
  EXPECT_EQ(csr.vertex_count(), 0u);
  EXPECT_EQ(csr.edge_count(), 0u);
  EXPECT_TRUE(csr.Validate());
}

TEST(CsrTest, BuildsFromUnsortedEdges) {
  EdgeList list;
  list.Add(2, 0, 5);
  list.Add(0, 1, 3);
  list.Add(0, 2, 4);
  list.Add(1, 2, 7);
  const Csr csr = Csr::FromEdges(list);
  EXPECT_EQ(csr.vertex_count(), 3u);
  EXPECT_EQ(csr.edge_count(), 4u);
  EXPECT_TRUE(csr.Validate());
  EXPECT_EQ(csr.Degree(0), 2u);
  EXPECT_EQ(csr.Degree(1), 1u);
  EXPECT_EQ(csr.Degree(2), 1u);
  const auto n0 = csr.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
  EXPECT_EQ(csr.NeighborWeights(0)[0], 3u);
  EXPECT_EQ(csr.NeighborWeights(0)[1], 4u);
}

TEST(CsrTest, AdjacencyRunsAreSortedByDestination) {
  EdgeList list;
  list.Add(0, 9);
  list.Add(0, 3);
  list.Add(0, 7);
  list.Add(0, 1);
  const Csr csr = Csr::FromEdges(list);
  const auto nbrs = csr.Neighbors(0);
  for (size_t i = 1; i < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i - 1], nbrs[i]);
  }
}

TEST(CsrTest, ExplicitVertexCountCreatesIsolatedVertices) {
  EdgeList list;
  list.Add(0, 1);
  const Csr csr = Csr::FromEdges(list, 10);
  EXPECT_EQ(csr.vertex_count(), 10u);
  EXPECT_EQ(csr.Degree(9), 0u);
  EXPECT_TRUE(csr.Neighbors(9).empty());
  EXPECT_TRUE(csr.Validate());
}

TEST(CsrTest, TransposeReversesEdges) {
  EdgeList list;
  list.Add(0, 1, 3);
  list.Add(0, 2, 4);
  list.Add(2, 1, 5);
  const Csr csr = Csr::FromEdges(list);
  const Csr t = csr.Transposed();
  EXPECT_TRUE(t.Validate());
  EXPECT_EQ(t.vertex_count(), csr.vertex_count());
  EXPECT_EQ(t.edge_count(), csr.edge_count());
  EXPECT_EQ(t.Degree(1), 2u);  // in-degree of 1
  EXPECT_EQ(t.Degree(0), 0u);
  const auto n1 = t.Neighbors(1);
  EXPECT_EQ(n1[0], 0u);
  EXPECT_EQ(n1[1], 2u);
  EXPECT_EQ(t.NeighborWeights(1)[0], 3u);
  EXPECT_EQ(t.NeighborWeights(1)[1], 5u);
}

TEST(CsrTest, DoubleTransposeIsIdentity) {
  const EdgeList list = GenerateRmat(8, 8, /*seed=*/7);
  const Csr csr = Csr::FromEdges(list);
  const Csr back = csr.Transposed().Transposed();
  EXPECT_EQ(back.row_offsets(), csr.row_offsets());
  EXPECT_EQ(back.col_indices(), csr.col_indices());
  EXPECT_EQ(back.weights(), csr.weights());
}

TEST(CsrTest, ParallelTransposeMatchesSequentialFlip) {
  // Large enough to clear kParallelBuildMinEdges, so the chunked edge-list
  // flip runs; the result must equal the straightforward one-edge-at-a-time
  // reversal exactly.
  const EdgeList list = GenerateRmat(12, 16, /*seed=*/5);
  const Csr csr = Csr::FromEdges(list);
  ASSERT_GE(csr.edge_count(), 1u << 15);
  const Csr t = csr.Transposed();
  EXPECT_TRUE(t.Validate());

  EdgeList reversed;
  reversed.Reserve(csr.edge_count());
  for (VertexId v = 0; v < csr.vertex_count(); ++v) {
    const auto nbrs = csr.Neighbors(v);
    const auto wts = csr.NeighborWeights(v);
    for (size_t i = 0; i < nbrs.size(); ++i) {
      reversed.Add(nbrs[i], v, wts[i]);
    }
  }
  const Csr expected = Csr::FromEdges(reversed, csr.vertex_count());
  EXPECT_EQ(t.row_offsets(), expected.row_offsets());
  EXPECT_EQ(t.col_indices(), expected.col_indices());
  EXPECT_EQ(t.weights(), expected.weights());
}

TEST(CsrTest, MemoryFootprintMatchesLayout) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 2);
  const Csr csr = Csr::FromEdges(list);
  // 4 offsets * 8B + 2 cols * 4B + 2 weights * 4B
  EXPECT_EQ(csr.MemoryFootprintBytes(), 4 * 8 + 2 * 4 + 2 * 4u);
}

TEST(CsrTest, GeneratedGraphsValidate) {
  EXPECT_TRUE(Csr::FromEdges(GenerateRmat(10, 8, 1)).Validate());
  EXPECT_TRUE(Csr::FromEdges(GenerateGridRoad(30, 30, 2)).Validate());
  EXPECT_TRUE(Csr::FromEdges(GenerateUniformRandom(500, 4000, 3)).Validate());
}

}  // namespace
}  // namespace simdx
