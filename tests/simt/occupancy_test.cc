#include "simt/occupancy.h"

#include <gtest/gtest.h>

#include "simt/device.h"

namespace simdx {
namespace {

// The paper's own worked example (Section 5): 110 registers per thread,
// 128 threads per CTA, K40 with 15 SMX and 65,536 registers each
// -> floor(65536 / (110 * 128)) * 15 = 4 * 15 = 60 CTAs.
TEST(OccupancyTest, PaperEquation1Example) {
  const DeviceSpec k40 = MakeK40();
  const KernelResources kernel{110, 128};
  EXPECT_EQ(MaxResidentCtasPerSm(k40, kernel), 4u);
  EXPECT_EQ(MaxResidentCtas(k40, kernel), 60u);
}

TEST(OccupancyTest, LowRegisterKernelCapsAtHardwareLimits) {
  const DeviceSpec k40 = MakeK40();
  const KernelResources kernel{16, 128};
  // Registers would allow 32 CTAs; the CTA cap (16) binds first.
  EXPECT_EQ(MaxResidentCtasPerSm(k40, kernel), 16u);
}

TEST(OccupancyTest, ThreadCapBinds) {
  const DeviceSpec k40 = MakeK40();
  const KernelResources kernel{16, 1024};
  // 2048 threads / 1024 per CTA = 2 CTAs max.
  EXPECT_EQ(MaxResidentCtasPerSm(k40, kernel), 2u);
}

TEST(OccupancyTest, ZeroInputsAreSafe) {
  const DeviceSpec k40 = MakeK40();
  EXPECT_EQ(MaxResidentCtasPerSm(k40, KernelResources{0, 128}), 0u);
  EXPECT_EQ(MaxResidentCtasPerSm(k40, KernelResources{32, 0}), 0u);
}

TEST(OccupancyTest, FractionDecreasesWithRegisterPressure) {
  const DeviceSpec k40 = MakeK40();
  const double low = OccupancyFraction(k40, KernelResources{26, 128});
  const double selective = OccupancyFraction(k40, KernelResources{48, 128});
  const double fused = OccupancyFraction(k40, KernelResources{110, 128});
  EXPECT_GT(low, selective);
  EXPECT_GT(selective, fused);
  // Table 2 narrative: the selective-fusion kernel should roughly double the
  // configurable thread count of the all-fusion kernel.
  EXPECT_GE(selective / fused, 2.0);
}

TEST(OccupancyTest, FractionIsAtMostOne) {
  const DeviceSpec p100 = MakeP100();
  EXPECT_LE(OccupancyFraction(p100, KernelResources{8, 128}), 1.0);
  EXPECT_GT(OccupancyFraction(p100, KernelResources{8, 128}), 0.9);
}

TEST(OccupancyTest, K20HasHalfTheRegistersOfK40) {
  // The paper: "65,536 registers of NVIDIA K40 GPUs and 32,768 from K20".
  EXPECT_EQ(MakeK40().registers_per_sm, 65536u);
  EXPECT_EQ(MakeK20().registers_per_sm, 32768u);
  const KernelResources kernel{48, 128};
  EXPECT_LT(MaxResidentCtasPerSm(MakeK20(), kernel),
            MaxResidentCtasPerSm(MakeK40(), kernel));
}

}  // namespace
}  // namespace simdx
