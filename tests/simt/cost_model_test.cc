#include "simt/cost_model.h"

#include <gtest/gtest.h>

#include "simt/device.h"

namespace simdx {
namespace {

TEST(CostModelTest, CountersAccumulate) {
  CostCounters a;
  a.coalesced_words = 10;
  a.atomic_ops = 2;
  CostCounters b;
  b.coalesced_words = 5;
  b.kernel_launches = 1;
  a += b;
  EXPECT_EQ(a.coalesced_words, 15u);
  EXPECT_EQ(a.atomic_ops, 2u);
  EXPECT_EQ(a.kernel_launches, 1u);
}

TEST(CostModelTest, ZeroCountersZeroTime) {
  const SimTime t = EstimateTime(CostCounters{}, MakeK40(), 1.0);
  EXPECT_EQ(t.cycles, 0.0);
  EXPECT_EQ(t.ms, 0.0);
}

TEST(CostModelTest, CoalescedIsCheaperThanScattered) {
  CostCounters coalesced;
  coalesced.coalesced_words = 100000;
  CostCounters scattered;
  scattered.scattered_words = 100000;
  const DeviceSpec d = MakeK40();
  EXPECT_LT(EstimateTime(coalesced, d, 1.0).cycles,
            EstimateTime(scattered, d, 1.0).cycles / 8);
}

TEST(CostModelTest, AtomicContentionCostsExtra) {
  CostCounters uncontended;
  uncontended.atomic_ops = 1000;
  CostCounters contended = uncontended;
  contended.atomic_conflicts = 900;
  const DeviceSpec d = MakeK40();
  EXPECT_GT(EstimateTime(contended, d, 1.0).cycles,
            2 * EstimateTime(uncontended, d, 1.0).cycles);
}

TEST(CostModelTest, LowerOccupancySlowsParallelWork) {
  CostCounters c;
  c.coalesced_words = 1000000;
  const DeviceSpec d = MakeK40();
  EXPECT_GT(EstimateTime(c, d, 0.25).cycles, EstimateTime(c, d, 1.0).cycles * 2);
}

TEST(CostModelTest, LaunchOverheadIsSerial) {
  CostCounters c;
  c.kernel_launches = 100;
  const DeviceSpec d = MakeK40();
  // Occupancy must not dilute launch overhead.
  EXPECT_DOUBLE_EQ(EstimateTime(c, d, 0.1).cycles, EstimateTime(c, d, 1.0).cycles);
  EXPECT_DOUBLE_EQ(EstimateTime(c, d, 1.0).cycles, 100 * d.kernel_launch_cycles);
}

TEST(CostModelTest, FasterDeviceFinishesSooner) {
  CostCounters c;
  c.coalesced_words = 10000000;
  c.kernel_launches = 10;
  EXPECT_LT(EstimateTime(c, MakeP100(), 1.0).ms, EstimateTime(c, MakeK20(), 1.0).ms);
  EXPECT_LT(EstimateTime(c, MakeK40(), 1.0).ms, EstimateTime(c, MakeK20(), 1.0).ms);
}

TEST(CostModelTest, MillisecondsFollowClock) {
  CostCounters c;
  c.kernel_launches = 1;
  const DeviceSpec d = MakeK40();
  const SimTime t = EstimateTime(c, d, 1.0);
  EXPECT_DOUBLE_EQ(t.ms, t.cycles / (d.clock_ghz * 1e6));
}

TEST(CostModelTest, KernelResourceOverloadUsesOccupancy) {
  CostCounters c;
  c.coalesced_words = 1000000;
  const DeviceSpec d = MakeK40();
  const SimTime high = EstimateTime(c, d, KernelResources{26, 128});
  const SimTime low = EstimateTime(c, d, KernelResources{110, 128});
  EXPECT_GT(low.cycles, high.cycles);
}

TEST(CostModelTest, RecordsPerDestinationEstimate) {
  // Degenerate inputs: no records or no reachable destinations -> 0 (the
  // collect-side fold gate then never arms, min_fold 0 excepted).
  EXPECT_EQ(EstimateRecordsPerDestination(0, 100), 0.0);
  EXPECT_EQ(EstimateRecordsPerDestination(100, 0), 0.0);
  // Sparse scatter: far fewer records than destinations -> ratio ~1 (no
  // guaranteed reuse), and always >= 1.
  const double sparse = EstimateRecordsPerDestination(10, 100000);
  EXPECT_GE(sparse, 1.0);
  EXPECT_LT(sparse, 1.01);
  // Crowded scatter: records >> destinations -> ratio approaches R/D (the
  // pigeonhole bound); the funnel workload (16000 records, ~4000 reachable
  // destinations) sits around 4.
  EXPECT_NEAR(EstimateRecordsPerDestination(16000, 4000), 4.07, 0.05);
  EXPECT_GT(EstimateRecordsPerDestination(1000000, 100), 9999.0);
  // Monotone in the record volume for a fixed destination universe.
  EXPECT_LT(EstimateRecordsPerDestination(1000, 4000),
            EstimateRecordsPerDestination(8000, 4000));
}

TEST(CostModelTest, ToStringMentionsAllFields) {
  CostCounters c;
  c.coalesced_words = 1;
  c.scattered_words = 2;
  c.atomic_ops = 3;
  const std::string s = ToString(c);
  EXPECT_NE(s.find("coalesced=1"), std::string::npos);
  EXPECT_NE(s.find("scattered=2"), std::string::npos);
  EXPECT_NE(s.find("atomics=3"), std::string::npos);
}

}  // namespace
}  // namespace simdx
