#include "simt/barrier.h"

#include <gtest/gtest.h>

#include "core/fusion.h"
#include "simt/device.h"

namespace simdx {
namespace {

TEST(BarrierSimTest, FitsCapacityCompletes) {
  const BarrierSimResult r = SimulateGlobalBarrier(/*grid=*/8, /*capacity=*/8);
  EXPECT_FALSE(r.deadlocked);
  EXPECT_EQ(r.starved_ctas, 0u);
}

TEST(BarrierSimTest, UnderCapacityCompletes) {
  const BarrierSimResult r = SimulateGlobalBarrier(4, 100, /*barriers=*/5);
  EXPECT_FALSE(r.deadlocked);
}

// The Figure 10 deadlock: one CTA more than the device can co-schedule and
// the barrier never completes.
TEST(BarrierSimTest, OneCtaOverCapacityDeadlocks) {
  const BarrierSimResult r = SimulateGlobalBarrier(9, 8);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.starved_ctas, 1u);
}

TEST(BarrierSimTest, ManyOverCapacityDeadlocksWithStarvedCount) {
  const BarrierSimResult r = SimulateGlobalBarrier(100, 60);
  EXPECT_TRUE(r.deadlocked);
  EXPECT_EQ(r.starved_ctas, 40u);
}

TEST(BarrierSimTest, ZeroBarrierKernelNeverDeadlocks) {
  // Without an in-kernel barrier, queued CTAs start as residents retire —
  // over-subscription is fine (this is why non-fused execution is safe).
  const BarrierSimResult r = SimulateGlobalBarrier(1000, 8, /*barriers=*/0);
  EXPECT_FALSE(r.deadlocked);
}

TEST(BarrierSimTest, EmptyGridTrivial) {
  EXPECT_FALSE(SimulateGlobalBarrier(0, 8).deadlocked);
}

// Property sweep: grids sized by Eq. 1 never deadlock, grids one larger
// always do (for kernels with at least one barrier).
struct GridCase {
  uint32_t registers;
  uint32_t threads_per_cta;
};

class DeadlockFreeSweep : public ::testing::TestWithParam<GridCase> {};

TEST_P(DeadlockFreeSweep, Equation1GridIsSafeAndTight) {
  for (const DeviceSpec& device : {MakeK20(), MakeK40(), MakeP100()}) {
    const KernelResources kernel{GetParam().registers, GetParam().threads_per_cta};
    const uint32_t grid = DeadlockFreeGridSize(device, kernel);
    ASSERT_GT(grid, 0u) << device.name;
    EXPECT_FALSE(SimulateGlobalBarrier(grid, grid, 3).deadlocked) << device.name;
    EXPECT_TRUE(SimulateGlobalBarrier(grid + 1, grid, 3).deadlocked) << device.name;
  }
}

INSTANTIATE_TEST_SUITE_P(RegisterPressures, DeadlockFreeSweep,
                         ::testing::Values(GridCase{24, 128}, GridCase{48, 128},
                                           GridCase{50, 128}, GridCase{110, 128},
                                           GridCase{110, 256}, GridCase{32, 256},
                                           GridCase{64, 512}));

TEST(GlobalBarrierTest, CountsCrossings) {
  GlobalBarrier barrier(60);
  EXPECT_EQ(barrier.parties(), 60u);
  EXPECT_EQ(barrier.ArriveAndDepartAll(), 1u);
  EXPECT_EQ(barrier.ArriveAndDepartAll(), 2u);
  EXPECT_EQ(barrier.crossings(), 2u);
}

// Ties Eq. 1 to the fusion register model: the all-fusion kernel's safe grid
// on K40 is exactly the paper's 60-CTA example.
TEST(BarrierSimTest, AllFusionGridOnK40MatchesPaperExample) {
  const KernelResources res =
      ResourcesFor(FusionPolicy::kAllFusion, Direction::kPush, 128);
  EXPECT_EQ(res.registers_per_thread, 110u);
  EXPECT_EQ(DeadlockFreeGridSize(MakeK40(), res), 60u);
}

}  // namespace
}  // namespace simdx
