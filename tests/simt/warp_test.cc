#include "simt/warp.h"

#include <gtest/gtest.h>

#include <array>
#include <numeric>
#include <random>
#include <vector>

namespace simdx {
namespace {

TEST(WarpTest, BallotBuildsMask) {
  std::array<bool, 32> pred{};
  pred[0] = true;
  pred[5] = true;
  pred[31] = true;
  EXPECT_EQ(WarpBallot(pred), (1u << 0) | (1u << 5) | (1u << 31));
}

TEST(WarpTest, BallotPartialWarp) {
  std::array<bool, 3> pred = {true, false, true};
  EXPECT_EQ(WarpBallot(pred), 0b101u);
}

TEST(WarpTest, BallotEmpty) {
  EXPECT_EQ(WarpBallot(std::span<const bool>{}), 0u);
}

TEST(WarpTest, AnyAll) {
  std::array<bool, 4> none = {false, false, false, false};
  std::array<bool, 4> some = {false, true, false, false};
  std::array<bool, 4> all = {true, true, true, true};
  EXPECT_FALSE(WarpAny(none));
  EXPECT_TRUE(WarpAny(some));
  EXPECT_FALSE(WarpAll(some));
  EXPECT_TRUE(WarpAll(all));
  EXPECT_TRUE(WarpAll(std::span<const bool>{}));  // vacuous
}

TEST(WarpTest, NthSetLane) {
  const uint32_t mask = (1u << 3) | (1u << 7) | (1u << 20);
  EXPECT_EQ(NthSetLane(mask, 0), 3u);
  EXPECT_EQ(NthSetLane(mask, 1), 7u);
  EXPECT_EQ(NthSetLane(mask, 2), 20u);
  EXPECT_EQ(NthSetLane(mask, 3), kWarpSize);  // out of range
}

TEST(WarpTest, ReduceSumMatchesAccumulate) {
  std::vector<uint32_t> lanes(32);
  std::mt19937 rng(1);
  for (auto& v : lanes) {
    v = rng() % 1000;
  }
  const uint32_t expected = std::accumulate(lanes.begin(), lanes.end(), 0u);
  const uint32_t got =
      WarpReduce<uint32_t>(lanes, [](uint32_t a, uint32_t b) { return a + b; }, 0u);
  EXPECT_EQ(got, expected);
}

TEST(WarpTest, ReduceMinWithPartialLanes) {
  std::vector<uint32_t> lanes = {9, 4, 7};
  const uint32_t got = WarpReduce<uint32_t>(
      lanes, [](uint32_t a, uint32_t b) { return a < b ? a : b; }, 0xffffffffu);
  EXPECT_EQ(got, 4u);
}

TEST(WarpTest, InclusiveScanPrefixSums) {
  std::vector<uint32_t> lanes(32, 1);
  const auto scan = WarpInclusiveScan<uint32_t>(
      lanes, [](uint32_t a, uint32_t b) { return a + b; }, 0u);
  for (uint32_t lane = 0; lane < 32; ++lane) {
    EXPECT_EQ(scan[lane], lane + 1);
  }
}

TEST(WarpTest, ExclusiveScanShiftsByOne) {
  std::vector<uint32_t> lanes = {3, 1, 4, 1, 5};
  const auto scan = WarpExclusiveScan<uint32_t>(
      lanes, [](uint32_t a, uint32_t b) { return a + b; }, 0u);
  EXPECT_EQ(scan[0], 0u);
  EXPECT_EQ(scan[1], 3u);
  EXPECT_EQ(scan[2], 4u);
  EXPECT_EQ(scan[3], 8u);
  EXPECT_EQ(scan[4], 9u);
}

TEST(WarpTest, ScanMatchesSerialPrefixOnRandomInput) {
  std::mt19937 rng(7);
  std::vector<uint64_t> lanes(32);
  for (auto& v : lanes) {
    v = rng() % 100;
  }
  const auto scan = WarpInclusiveScan<uint64_t>(
      lanes, [](uint64_t a, uint64_t b) { return a + b; }, uint64_t{0});
  uint64_t running = 0;
  for (uint32_t lane = 0; lane < 32; ++lane) {
    running += lanes[lane];
    EXPECT_EQ(scan[lane], running) << "lane " << lane;
  }
}

TEST(WarpTest, PopCount) {
  EXPECT_EQ(PopCount(0u), 0u);
  EXPECT_EQ(PopCount(kFullMask), 32u);
  EXPECT_EQ(PopCount(0b1011u), 3u);
}

}  // namespace
}  // namespace simdx
