// SIMDX_FAULTS containment: a service whose queries carry NO per-query
// faults falls back to the process-wide env registry. That registry is
// one-shot, so in a concurrent batch exactly ONE query takes the fault and
// every other completes clean — the ISSUE's "a query armed with
// SIMDX_FAULTS returns kFaulted while every other query completes with a
// fingerprint bit-identical to one-shot Engine::Run".
//
// This lives in its OWN test binary: FaultRegistry::FromEnv latches on
// first use, so the env var must be set before ANY engine in the process
// runs — the static initializer below does that ahead of main. The oracle
// is computed AFTER the service batch, once the one-shot arm is spent.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "algos/algos.h"
#include "bench/common.h"
#include "graph/generators.h"
#include "service/service.h"
#include "simt/device.h"

namespace simdx::service {
namespace {

const bool kEnvArmed = [] {
  // Case-insensitive spelling on purpose: exercises the parser satellite on
  // the env path too.
  setenv("SIMDX_FAULTS", "Iteration-Start@2", 1);
  return true;
}();

TEST(EnvFaultTest, ExactlyOneQueryTakesTheEnvFault) {
  ASSERT_TRUE(kEnvArmed);
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 3), false);
  ServiceOptions so;
  so.workers = 3;
  so.queue_capacity = 64;
  so.engine.sim_worker_threads = 64;
  GraphService svc(g, so);

  // Single-attempt queries: the one that draws the env fault must surface
  // kFaulted, not silently retry past it.
  std::vector<GraphService::Ticket> tickets;
  for (int i = 0; i < 20; ++i) {
    Query q;
    q.kind = QueryKind::kBfs;
    q.source = 1;
    q.max_attempts = 1;
    auto t = svc.Submit(q);
    ASSERT_EQ(t.verdict, AdmissionVerdict::kAdmitted);
    tickets.push_back(std::move(t));
  }
  svc.Drain();

  // Oracle AFTER the batch: the one-shot arm is spent, so this run is clean.
  EngineOptions o;
  o.sim_worker_threads = 64;
  BfsProgram program;
  program.source = 1;
  Engine<BfsProgram> engine(g, MakeK40(), o);
  const auto oracle_run = engine.Run(program);
  ASSERT_TRUE(oracle_run.stats.ok());
  const std::string oracle = bench::StatsFingerprint(oracle_run);

  uint32_t faulted = 0;
  for (auto& t : tickets) {
    const QueryResult r = t.result.get();
    if (r.outcome == RunOutcome::kFaulted) {
      ++faulted;
    } else {
      ASSERT_EQ(r.outcome, RunOutcome::kCompleted);
      EXPECT_EQ(r.fingerprint, oracle);
    }
  }
  EXPECT_EQ(faulted, 1u)
      << "the env registry is one-shot: exactly one query takes the crash";
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.faulted, 1u);
  EXPECT_EQ(s.completed, 19u);
}

}  // namespace
}  // namespace simdx::service
