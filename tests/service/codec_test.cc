// Wire codec contract: round trips for all three frame types, the
// malformed-frame taxonomy (table-driven — every way a frame can lie maps to
// exactly one DecodeStatus, never a crash; the CI ASan job runs this test so
// a hostile length or torn body that touched memory it shouldn't would
// abort), partial-read reassembly down to one byte at a time, and the
// relative-deadline semantics the codec is REQUIRED to preserve across the
// process boundary.
#include "service/codec.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "service/service.h"

namespace simdx::service::wire {
namespace {

RequestFrame SampleRequest() {
  RequestFrame f;
  f.request_id = 0xDEADBEEFCAFEull;
  f.kind = static_cast<uint8_t>(QueryKind::kSssp);
  f.source = 1234;
  f.k = 7;
  f.deadline_rel_ms = 250.5;
  f.max_attempts = 3;
  f.want_values = 1;
  f.fault_spec = "iteration-start@1";
  return f;
}

ResponseFrame SampleResponse() {
  ResponseFrame f;
  f.request_id = 42;
  f.kind = static_cast<uint8_t>(QueryKind::kBfs);
  f.outcome = 0;
  f.served = 1;
  f.attempts = 2;
  f.queue_ms = 1.25;
  f.run_ms = 9.75;
  f.value_fingerprint = 0x1122334455667788ull;
  f.value_bytes = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  return f;
}

// Feeds bytes and expects exactly one well-formed frame.
DecodeStatus DecodeOne(const std::vector<uint8_t>& bytes, Frame* out) {
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  return dec.Next(out);
}

TEST(CodecRoundTripTest, Request) {
  const RequestFrame in = SampleRequest();
  std::vector<uint8_t> bytes;
  EncodeRequest(in, &bytes);

  Frame f;
  ASSERT_EQ(DecodeOne(bytes, &f), DecodeStatus::kOk);
  ASSERT_EQ(f.type, MsgType::kRequest);
  EXPECT_EQ(f.request.request_id, in.request_id);
  EXPECT_EQ(f.request.kind, in.kind);
  EXPECT_EQ(f.request.source, in.source);
  EXPECT_EQ(f.request.k, in.k);
  EXPECT_EQ(f.request.deadline_rel_ms, in.deadline_rel_ms);
  EXPECT_EQ(f.request.max_attempts, in.max_attempts);
  EXPECT_EQ(f.request.want_values, in.want_values);
  EXPECT_EQ(f.request.fault_spec, in.fault_spec);
}

TEST(CodecRoundTripTest, Response) {
  const ResponseFrame in = SampleResponse();
  std::vector<uint8_t> bytes;
  EncodeResponse(in, &bytes);

  Frame f;
  ASSERT_EQ(DecodeOne(bytes, &f), DecodeStatus::kOk);
  ASSERT_EQ(f.type, MsgType::kResponse);
  EXPECT_EQ(f.response.request_id, in.request_id);
  EXPECT_EQ(f.response.kind, in.kind);
  EXPECT_EQ(f.response.served, in.served);
  EXPECT_EQ(f.response.attempts, in.attempts);
  EXPECT_EQ(f.response.queue_ms, in.queue_ms);
  EXPECT_EQ(f.response.run_ms, in.run_ms);
  EXPECT_EQ(f.response.value_fingerprint, in.value_fingerprint);
  EXPECT_EQ(f.response.value_bytes, in.value_bytes);
}

TEST(CodecRoundTripTest, Reject) {
  RejectFrame in;
  in.request_id = 9;
  in.code = static_cast<uint8_t>(RejectCode::kShedDeadline);
  in.detail = "backlog estimate exceeds the deadline";
  std::vector<uint8_t> bytes;
  EncodeReject(in, &bytes);

  Frame f;
  ASSERT_EQ(DecodeOne(bytes, &f), DecodeStatus::kOk);
  ASSERT_EQ(f.type, MsgType::kReject);
  EXPECT_EQ(f.reject.request_id, in.request_id);
  EXPECT_EQ(f.reject.code, in.code);
  EXPECT_EQ(f.reject.detail, in.detail);
}

TEST(CodecRoundTripTest, EmptyValueBytesAndEmptyStrings) {
  ResponseFrame in;  // all defaults: no value bytes
  std::vector<uint8_t> bytes;
  EncodeResponse(in, &bytes);
  Frame f;
  ASSERT_EQ(DecodeOne(bytes, &f), DecodeStatus::kOk);
  EXPECT_TRUE(f.response.value_bytes.empty());

  RequestFrame rq;  // empty fault_spec
  bytes.clear();
  EncodeRequest(rq, &bytes);
  ASSERT_EQ(DecodeOne(bytes, &f), DecodeStatus::kOk);
  EXPECT_TRUE(f.request.fault_spec.empty());
}

// An out-of-range kind byte is STRUCTURALLY valid wire traffic: the codec
// carries it intact (range policy belongs to admission, which bound-guards
// before its per-kind arrays — see service.cc). The codec must neither
// reject nor clamp it.
TEST(CodecRoundTripTest, OutOfRangeKindByteTravelsIntact) {
  RequestFrame in = SampleRequest();
  in.kind = 200;
  std::vector<uint8_t> bytes;
  EncodeRequest(in, &bytes);
  Frame f;
  ASSERT_EQ(DecodeOne(bytes, &f), DecodeStatus::kOk);
  EXPECT_EQ(f.request.kind, 200);
}

// ---- malformed frames: one status per lie, table-driven ----

std::vector<uint8_t> ValidRequestBytes() {
  std::vector<uint8_t> bytes;
  EncodeRequest(SampleRequest(), &bytes);
  return bytes;
}

struct MalformedCase {
  const char* name;
  std::vector<uint8_t> bytes;
  DecodeStatus expect;
};

std::vector<MalformedCase> MalformedCases() {
  std::vector<MalformedCase> cases;
  {
    auto b = ValidRequestBytes();
    b[0] ^= 0xFF;
    cases.push_back({"bad-magic", b, DecodeStatus::kBadMagic});
  }
  {
    auto b = ValidRequestBytes();
    b[4] ^= 0xFF;
    cases.push_back({"bad-version", b, DecodeStatus::kBadVersion});
  }
  {
    // Unknown msg type over a structurally perfect body: recoverable.
    auto b = ValidRequestBytes();
    const uint16_t bogus = 99;
    std::memcpy(&b[6], &bogus, sizeof(bogus));
    cases.push_back({"bad-msg-type", b, DecodeStatus::kBadMsgType});
  }
  {
    // A hostile 4 GiB length must be refused from the header alone —
    // before allocation, before waiting for body bytes.
    auto b = ValidRequestBytes();
    b.resize(kFrameHeaderBytes);
    const uint32_t huge = 0xFFFFFFFFu;
    std::memcpy(&b[8], &huge, sizeof(huge));
    cases.push_back({"oversized-body", b, DecodeStatus::kOversizedBody});
  }
  {
    auto b = ValidRequestBytes();
    b.back() ^= 0xFF;
    cases.push_back({"bad-crc", b, DecodeStatus::kBadCrc});
  }
  {
    // CRC-valid garbage that fails to parse as a request body.
    const std::vector<uint8_t> body = {1, 2, 3};
    std::vector<uint8_t> b;
    ByteWriter w(&b);
    w.Pod(kFrameMagic);
    w.Pod(kWireVersion);
    w.Pod(static_cast<uint16_t>(MsgType::kRequest));
    w.Pod(static_cast<uint32_t>(body.size()));
    w.Pod(Crc32(body.data(), body.size()));
    w.Bytes(body.data(), body.size());
    cases.push_back({"truncated-fields", b, DecodeStatus::kMalformedBody});
  }
  {
    // Trailing garbage after a complete body: rejected by design (there is
    // no silent ignore-the-tail lane — new fields bump the version).
    RequestFrame rq = SampleRequest();
    std::vector<uint8_t> body;
    ByteWriter bw(&body);
    bw.Pod(rq.request_id);
    bw.Pod(rq.kind);
    bw.Pod(rq.source);
    bw.Pod(rq.k);
    bw.Pod(rq.deadline_rel_ms);
    bw.Pod(rq.max_attempts);
    bw.Pod(rq.want_values);
    bw.Str(rq.fault_spec);
    bw.Pod(uint32_t{0xAAAAAAAAu});  // the tail a v2 sender might append
    std::vector<uint8_t> b;
    ByteWriter w(&b);
    w.Pod(kFrameMagic);
    w.Pod(kWireVersion);
    w.Pod(static_cast<uint16_t>(MsgType::kRequest));
    w.Pod(static_cast<uint32_t>(body.size()));
    w.Pod(Crc32(body.data(), body.size()));
    w.Bytes(body.data(), body.size());
    cases.push_back({"trailing-garbage", b, DecodeStatus::kMalformedBody});
  }
  {
    // A fault_spec length that overruns the remaining payload: ByteReader
    // validates string lengths before any copy.
    RequestFrame rq = SampleRequest();
    std::vector<uint8_t> body;
    ByteWriter bw(&body);
    bw.Pod(rq.request_id);
    bw.Pod(rq.kind);
    bw.Pod(rq.source);
    bw.Pod(rq.k);
    bw.Pod(rq.deadline_rel_ms);
    bw.Pod(rq.max_attempts);
    bw.Pod(rq.want_values);
    bw.Pod(uint64_t{1u << 20});  // claims a 1 MiB string, provides 0 bytes
    std::vector<uint8_t> b;
    ByteWriter w(&b);
    w.Pod(kFrameMagic);
    w.Pod(kWireVersion);
    w.Pod(static_cast<uint16_t>(MsgType::kRequest));
    w.Pod(static_cast<uint32_t>(body.size()));
    w.Pod(Crc32(body.data(), body.size()));
    w.Bytes(body.data(), body.size());
    cases.push_back({"string-length-overrun", b, DecodeStatus::kMalformedBody});
  }
  return cases;
}

TEST(CodecMalformedTest, EveryLieGetsItsTypedStatus) {
  for (const MalformedCase& mc : MalformedCases()) {
    SCOPED_TRACE(mc.name);
    Frame f;
    EXPECT_EQ(DecodeOne(mc.bytes, &f), mc.expect);
  }
}

TEST(CodecMalformedTest, FatalSplitMatchesStreamTrust) {
  // Fatal = the stream lost its frame boundary; recoverable = the header
  // walked the body correctly. The dispatch loop's close-or-continue
  // decision hangs off this split, so pin it.
  EXPECT_TRUE(IsFatal(DecodeStatus::kBadMagic));
  EXPECT_TRUE(IsFatal(DecodeStatus::kBadVersion));
  EXPECT_TRUE(IsFatal(DecodeStatus::kOversizedBody));
  EXPECT_TRUE(IsFatal(DecodeStatus::kBadCrc));
  EXPECT_FALSE(IsFatal(DecodeStatus::kBadMsgType));
  EXPECT_FALSE(IsFatal(DecodeStatus::kMalformedBody));
  EXPECT_FALSE(IsFatal(DecodeStatus::kOk));
  EXPECT_FALSE(IsFatal(DecodeStatus::kNeedMore));
}

TEST(CodecMalformedTest, FatalStatusPoisonsTheDecoder) {
  auto bad = ValidRequestBytes();
  bad[0] ^= 0xFF;
  FrameDecoder dec;
  dec.Feed(bad.data(), bad.size());
  Frame f;
  EXPECT_EQ(dec.Next(&f), DecodeStatus::kBadMagic);
  // Even pristine follow-up bytes cannot revive the stream.
  const auto good = ValidRequestBytes();
  dec.Feed(good.data(), good.size());
  EXPECT_EQ(dec.Next(&f), DecodeStatus::kBadMagic);
}

TEST(CodecMalformedTest, RecoverableStatusConsumesTheFrameAndContinues) {
  auto bad = ValidRequestBytes();
  const uint16_t bogus = 77;
  std::memcpy(&bad[6], &bogus, sizeof(bogus));
  const auto good = ValidRequestBytes();

  FrameDecoder dec;
  dec.Feed(bad.data(), bad.size());
  dec.Feed(good.data(), good.size());
  Frame f;
  EXPECT_EQ(dec.Next(&f), DecodeStatus::kBadMsgType);
  ASSERT_EQ(dec.Next(&f), DecodeStatus::kOk);  // the stream kept its sync
  EXPECT_EQ(f.type, MsgType::kRequest);
  EXPECT_EQ(dec.Next(&f), DecodeStatus::kNeedMore);
}

// ---- reassembly ----

TEST(CodecReassemblyTest, TruncatedHeaderThenCompletion) {
  const auto bytes = ValidRequestBytes();
  FrameDecoder dec;
  Frame f;
  dec.Feed(bytes.data(), kFrameHeaderBytes - 3);
  EXPECT_EQ(dec.Next(&f), DecodeStatus::kNeedMore);
  dec.Feed(bytes.data() + kFrameHeaderBytes - 3,
           bytes.size() - (kFrameHeaderBytes - 3));
  EXPECT_EQ(dec.Next(&f), DecodeStatus::kOk);
}

TEST(CodecReassemblyTest, TornMidBodyThenCompletion) {
  const auto bytes = ValidRequestBytes();
  const size_t cut = kFrameHeaderBytes + 5;  // header complete, body torn
  FrameDecoder dec;
  Frame f;
  dec.Feed(bytes.data(), cut);
  EXPECT_EQ(dec.Next(&f), DecodeStatus::kNeedMore);
  dec.Feed(bytes.data() + cut, bytes.size() - cut);
  ASSERT_EQ(dec.Next(&f), DecodeStatus::kOk);
  EXPECT_EQ(f.request.request_id, SampleRequest().request_id);
}

TEST(CodecReassemblyTest, OneByteAtATime) {
  const auto bytes = ValidRequestBytes();
  FrameDecoder dec;
  Frame f;
  for (size_t i = 0; i + 1 < bytes.size(); ++i) {
    dec.Feed(&bytes[i], 1);
    ASSERT_EQ(dec.Next(&f), DecodeStatus::kNeedMore) << "byte " << i;
  }
  dec.Feed(&bytes.back(), 1);
  ASSERT_EQ(dec.Next(&f), DecodeStatus::kOk);
  EXPECT_EQ(f.request.fault_spec, SampleRequest().fault_spec);
}

TEST(CodecReassemblyTest, ManyFramesInOneFeed) {
  std::vector<uint8_t> bytes;
  constexpr int kFrames = 5;
  for (int i = 0; i < kFrames; ++i) {
    RequestFrame rf = SampleRequest();
    rf.request_id = static_cast<uint64_t>(i);
    EncodeRequest(rf, &bytes);
  }
  FrameDecoder dec;
  dec.Feed(bytes.data(), bytes.size());
  Frame f;
  for (int i = 0; i < kFrames; ++i) {
    ASSERT_EQ(dec.Next(&f), DecodeStatus::kOk);
    EXPECT_EQ(f.request.request_id, static_cast<uint64_t>(i));
  }
  EXPECT_EQ(dec.Next(&f), DecodeStatus::kNeedMore);
  EXPECT_EQ(dec.frames_decoded(), static_cast<uint64_t>(kFrames));
  EXPECT_EQ(dec.buffered(), 0u);
}

// ---- the cross-process deadline contract ----

// A round-tripped deadline must still mean "relative to SERVER admission".
// Regression for the bug class this PR sweeps out: if the codec (or a
// client) converted to an absolute clock value, a deadline encoded before a
// queueing delay would arrive already half-expired — here, a generous
// relative deadline crossing the codec while the service is PAUSED must
// still admit and complete once resumed, because the clock only starts at
// Submit on the server side.
TEST(CodecDeadlineTest, RelativeDeadlineSurvivesEncodingDelay) {
  const Graph g = Graph::FromEdges(GenerateRmat(7, 8, 3), false);
  ServiceOptions so;
  so.workers = 1;
  so.start_paused = true;
  GraphService svc(g, so);

  RequestFrame rf;
  rf.kind = static_cast<uint8_t>(QueryKind::kBfs);
  rf.source = 0;
  rf.deadline_rel_ms = 60000.0;  // one minute, relative
  std::vector<uint8_t> bytes;
  EncodeRequest(rf, &bytes);

  // Time passes between encoding and admission (a network, a queue...).
  // Relative semantics are immune; absolute semantics would be eroding.
  Frame f;
  ASSERT_EQ(DecodeOne(bytes, &f), DecodeStatus::kOk);
  EXPECT_EQ(f.request.deadline_rel_ms, 60000.0);

  Query q;
  q.kind = static_cast<QueryKind>(f.request.kind);
  q.source = f.request.source;
  q.deadline_ms = f.request.deadline_rel_ms;  // relative stays relative
  auto ticket = svc.Submit(q);
  ASSERT_EQ(ticket.verdict, AdmissionVerdict::kAdmitted);
  svc.Resume();
  const QueryResult r = ticket.result.get();
  EXPECT_TRUE(r.ok()) << "outcome=" << ToString(r.outcome);
  svc.Shutdown();
}

}  // namespace
}  // namespace simdx::service::wire
