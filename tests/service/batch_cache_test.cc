// Dispatch-side batching + result cache: the throughput layers must never
// change an ANSWER. The universal oracle is the value_fingerprint (FNV-1a
// over the query's own output bytes): solo, batched and cached answers to
// the same question must carry the same digest — and with want_values on,
// the same bytes. start_paused composes the queue deterministically so a
// test can watch exactly one dispatch decision ("do these N queries
// coalesce into one multi-source run?").
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "algos/algos.h"
#include "bench/common.h"
#include "core/fingerprint.h"
#include "graph/generators.h"
#include "service/cache.h"
#include "service/service.h"
#include "simt/device.h"

namespace simdx::service {
namespace {

Graph TestGraph() { return Graph::FromEdges(GenerateRmat(8, 8, 3), false); }

ServiceOptions BatchingService(uint32_t batch_max) {
  ServiceOptions o;
  o.workers = 1;  // one dispatcher -> one deterministic coalescing decision
  o.queue_capacity = 128;
  o.engine.sim_worker_threads = 64;
  o.batch_max = batch_max;
  o.start_paused = true;
  return o;
}

ServiceOptions CachingService(size_t cache_capacity) {
  ServiceOptions o;
  o.workers = 1;
  o.queue_capacity = 64;
  o.engine.sim_worker_threads = 64;
  o.cache_capacity = cache_capacity;
  return o;
}

std::vector<uint8_t> Bytes(const std::vector<uint32_t>& v) {
  std::vector<uint8_t> out(v.size() * sizeof(uint32_t));
  if (!out.empty()) {
    std::memcpy(out.data(), v.data(), out.size());
  }
  return out;
}

Query BfsQuery(VertexId source, bool want_values = true) {
  Query q;
  q.kind = QueryKind::kBfs;
  q.source = source;
  q.want_values = want_values;
  return q;
}

// The headline contract: 48 queued BFS queries (including duplicates — two
// clients may well ask the same question) coalesce into ONE multi-source
// run, and every demuxed answer is byte-identical to its solo one-shot
// oracle.
TEST(BatchCacheTest, BatchedAnswersAreBitEqualToSoloOracles) {
  const Graph g = TestGraph();
  GraphService svc(g, BatchingService(64));

  std::vector<VertexId> sources;
  for (VertexId v = 0; v < 40; ++v) {
    sources.push_back(v * 3 % g.vertex_count());
  }
  for (VertexId v = 0; v < 8; ++v) {
    sources.push_back(sources[v]);  // duplicates share a lane
  }
  std::vector<GraphService::Ticket> tickets;
  for (VertexId s : sources) {
    auto t = svc.Submit(BfsQuery(s));
    ASSERT_EQ(t.verdict, AdmissionVerdict::kAdmitted);
    tickets.push_back(std::move(t));
  }
  svc.Resume();
  svc.Drain();

  EngineOptions oracle_options;
  oracle_options.sim_worker_threads = 64;
  std::string shared_fp;
  for (size_t i = 0; i < tickets.size(); ++i) {
    const QueryResult r = tickets[i].result.get();
    ASSERT_TRUE(r.ok()) << "query " << i;
    EXPECT_EQ(r.served, ServedBy::kBatched) << "query " << i;
    const auto oracle = RunBfs(g, sources[i], MakeK40(), oracle_options);
    const std::vector<uint8_t> expected = Bytes(oracle.values);
    EXPECT_EQ(r.value_bytes, expected) << "query " << i;
    EXPECT_EQ(r.value_fingerprint,
              ValueBytesFingerprint(expected.data(), expected.size()))
        << "query " << i;
    // Members share the batch run's stats fingerprint.
    if (i == 0) {
      shared_fp = r.fingerprint;
      EXPECT_FALSE(shared_fp.empty());
    } else {
      EXPECT_EQ(r.fingerprint, shared_fp) << "query " << i;
    }
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.batches, 1u) << "one worker, one wakeup, one coalesced run";
  EXPECT_EQ(s.batched_queries, sources.size());
  EXPECT_EQ(s.completed, s.admitted);
}

// batch_max == 1 (the default) means the batching code path is never taken:
// sequential clients keep the solo one-shot fingerprint contract untouched.
TEST(BatchCacheTest, SingletonDispatchKeepsSoloContract) {
  const Graph g = TestGraph();
  GraphService svc(g, BatchingService(64));
  auto t = svc.Submit(BfsQuery(3));
  ASSERT_EQ(t.verdict, AdmissionVerdict::kAdmitted);
  svc.Resume();
  const QueryResult r = t.result.get();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.served, ServedBy::kSolo);

  EngineOptions o;
  o.sim_worker_threads = 64;
  BfsProgram program;
  program.source = 3;
  Engine<BfsProgram> engine(g, MakeK40(), o);
  EXPECT_EQ(r.fingerprint, bench::StatsFingerprint(engine.Run(program)));
  EXPECT_EQ(svc.stats().batches, 0u);
}

// Fault-armed queries never batch — their containment contract ("THIS run
// faults or survives its own retry loop") is per-query by design. They also
// must not break coalescing for the clean queries queued around them.
TEST(BatchCacheTest, FaultArmedQueriesNeverBatchButNeighborsStillCoalesce) {
  const Graph g = TestGraph();
  GraphService svc(g, BatchingService(64));

  auto clean_a = svc.Submit(BfsQuery(1));
  Query armed = BfsQuery(2);
  armed.fault_spec = "frontier@1";
  armed.max_attempts = 2;
  auto armed_t = svc.Submit(armed);
  auto clean_b = svc.Submit(BfsQuery(4));
  ASSERT_EQ(clean_a.verdict, AdmissionVerdict::kAdmitted);
  ASSERT_EQ(armed_t.verdict, AdmissionVerdict::kAdmitted);
  ASSERT_EQ(clean_b.verdict, AdmissionVerdict::kAdmitted);
  svc.Resume();
  svc.Drain();

  const QueryResult ra = clean_a.result.get();
  const QueryResult rf = armed_t.result.get();
  const QueryResult rb = clean_b.result.get();
  // The clean pair coalesced PAST the armed query sitting between them.
  EXPECT_EQ(ra.served, ServedBy::kBatched);
  EXPECT_EQ(rb.served, ServedBy::kBatched);
  // The armed query ran alone and survived via its own retry loop.
  EXPECT_EQ(rf.served, ServedBy::kSolo);
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf.attempts, 2u);
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batched_queries, 2u);
  EXPECT_EQ(s.retries, 1u);
}

// Cancellation and in-queue deadline expiry are decided at assembly, before
// any lane is granted: dead members retire with run_ms == 0 and the
// survivors still coalesce.
TEST(BatchCacheTest, AssemblyTriagesCancelledAndExpiredMembers) {
  const Graph g = TestGraph();
  GraphService svc(g, BatchingService(64));

  auto alive_a = svc.Submit(BfsQuery(1));
  auto doomed = svc.Submit(BfsQuery(2));
  Query expiring = BfsQuery(3);
  expiring.deadline_ms = 1e-3;  // lapses while the queue is still paused
  auto expired = svc.Submit(expiring);
  auto alive_b = svc.Submit(BfsQuery(4));
  ASSERT_EQ(expired.verdict, AdmissionVerdict::kAdmitted);
  ASSERT_TRUE(svc.Cancel(doomed.query_id));
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  svc.Resume();
  svc.Drain();

  const QueryResult rc = doomed.result.get();
  EXPECT_EQ(rc.outcome, RunOutcome::kCancelled);
  EXPECT_EQ(rc.run_ms, 0.0) << "cancelled members must not run";
  const QueryResult re = expired.result.get();
  EXPECT_EQ(re.outcome, RunOutcome::kDeadlineExceeded);
  EXPECT_EQ(re.run_ms, 0.0) << "expired members must not run";
  EXPECT_TRUE(alive_a.result.get().ok());
  EXPECT_TRUE(alive_b.result.get().ok());
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.batched_queries, 2u) << "only the survivors count as batched";
  EXPECT_EQ(s.expired_in_queue, 1u);
  EXPECT_EQ(s.cancelled, 1u);
}

// A cache hit replays the filling run's answer bit-for-bit, without touching
// a worker arena (attempts == 0).
TEST(BatchCacheTest, CacheHitIsBitEqualToTheFillingRun) {
  const Graph g = TestGraph();
  GraphService svc(g, CachingService(8));

  auto first = svc.Submit(BfsQuery(5));
  ASSERT_EQ(first.verdict, AdmissionVerdict::kAdmitted);
  const QueryResult miss = first.result.get();
  ASSERT_TRUE(miss.ok());
  EXPECT_EQ(miss.served, ServedBy::kSolo);

  auto second = svc.Submit(BfsQuery(5));
  ASSERT_EQ(second.verdict, AdmissionVerdict::kAdmitted);
  const QueryResult hit = second.result.get();
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(hit.served, ServedBy::kCache);
  EXPECT_EQ(hit.attempts, 0u) << "a hit launches no engine run";
  EXPECT_EQ(hit.value_bytes, miss.value_bytes);
  EXPECT_EQ(hit.value_fingerprint, miss.value_fingerprint);
  EXPECT_EQ(hit.fingerprint, miss.fingerprint);

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.cache_misses, 1u);
  // A hit is an answered query: the ledger identities hold without a
  // special row.
  EXPECT_EQ(s.admitted, 2u);
  EXPECT_EQ(s.completed, 2u);
}

// k-Core keys on k, not source: different thresholds must not collide.
TEST(BatchCacheTest, KCoreCacheKeysOnThreshold) {
  const Graph g = TestGraph();
  GraphService svc(g, CachingService(8));
  Query k2;
  k2.kind = QueryKind::kKCore;
  k2.k = 2;
  k2.want_values = true;
  Query k3 = k2;
  k3.k = 3;

  const QueryResult r2 = svc.Submit(k2).result.get();
  const QueryResult r3 = svc.Submit(k3).result.get();
  ASSERT_TRUE(r2.ok());
  ASSERT_TRUE(r3.ok());
  EXPECT_EQ(r3.served, ServedBy::kSolo) << "k=3 must not hit the k=2 entry";
  const QueryResult r2_again = svc.Submit(k2).result.get();
  EXPECT_EQ(r2_again.served, ServedBy::kCache);
  EXPECT_EQ(r2_again.value_bytes, r2.value_bytes);
}

// Capacity pressure evicts least-recently-used entries; the evicted question
// misses again and re-fills.
TEST(BatchCacheTest, LruEvictionUnderCapacityPressure) {
  const Graph g = TestGraph();
  GraphService svc(g, CachingService(2));
  ASSERT_TRUE(svc.Submit(BfsQuery(1)).result.get().ok());  // fill {1}
  ASSERT_TRUE(svc.Submit(BfsQuery(2)).result.get().ok());  // fill {1,2}
  ASSERT_TRUE(svc.Submit(BfsQuery(3)).result.get().ok());  // evict 1 -> {2,3}
  const QueryResult r1 = svc.Submit(BfsQuery(1)).result.get();
  EXPECT_EQ(r1.served, ServedBy::kSolo) << "evicted entries miss again";
  ASSERT_TRUE(r1.ok());  // re-fill evicts 2 -> {3,1}
  EXPECT_EQ(svc.Submit(BfsQuery(3)).result.get().served, ServedBy::kCache);
  const ServiceStats s = svc.stats();
  EXPECT_GE(s.cache_evictions, 2u);
  EXPECT_EQ(s.cache_hits, 1u);
}

// Bumping the graph version makes every cached answer unreachable: stale
// epochs must never be served, and the same question re-runs and re-fills
// under the new version.
TEST(BatchCacheTest, GraphVersionBumpInvalidatesCache) {
  const Graph g = TestGraph();
  GraphService svc(g, CachingService(8));
  const QueryResult fill = svc.Submit(BfsQuery(7)).result.get();
  ASSERT_TRUE(fill.ok());
  EXPECT_EQ(svc.Submit(BfsQuery(7)).result.get().served, ServedBy::kCache);

  svc.SetGraphVersion(1);
  EXPECT_EQ(svc.graph_version(), 1u);
  const QueryResult after = svc.Submit(BfsQuery(7)).result.get();
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.served, ServedBy::kSolo) << "old epoch must not be served";
  EXPECT_EQ(after.value_bytes, fill.value_bytes)
      << "the CSR itself is immutable; only the epoch moved";
  // Re-filled under version 1: hits again.
  EXPECT_EQ(svc.Submit(BfsQuery(7)).result.get().served, ServedBy::kCache);
  // An idempotent SetGraphVersion does not purge.
  svc.SetGraphVersion(1);
  EXPECT_EQ(svc.Submit(BfsQuery(7)).result.get().served, ServedBy::kCache);
}

// Fault-armed queries bypass the cache BOTH ways: they neither hit (their
// contract is "this specific run faults or survives") nor fill (a retried
// answer must never masquerade as a fresh untroubled run).
TEST(BatchCacheTest, FaultArmedQueriesBypassTheCache) {
  const Graph g = TestGraph();
  GraphService svc(g, CachingService(8));
  ASSERT_TRUE(svc.Submit(BfsQuery(9)).result.get().ok());  // clean fill

  Query armed = BfsQuery(9);
  armed.fault_spec = "frontier@1";
  armed.max_attempts = 2;
  const QueryResult rf = svc.Submit(armed).result.get();
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(rf.served, ServedBy::kSolo) << "armed queries must actually run";
  EXPECT_EQ(rf.attempts, 2u);
  // The clean entry is still there and still clean.
  const QueryResult hit = svc.Submit(BfsQuery(9)).result.get();
  EXPECT_EQ(hit.served, ServedBy::kCache);
  EXPECT_EQ(hit.attempts, 0u);
}

// Batching and caching compose: a batch's demuxed answers fill the cache,
// and repeat questions are then served without any dispatch at all.
TEST(BatchCacheTest, BatchedAnswersFillTheCache) {
  const Graph g = TestGraph();
  ServiceOptions o = BatchingService(64);
  o.cache_capacity = 16;
  GraphService svc(g, o);
  std::vector<GraphService::Ticket> tickets;
  for (VertexId s = 0; s < 8; ++s) {
    tickets.push_back(svc.Submit(BfsQuery(s)));
  }
  svc.Resume();
  svc.Drain();
  std::vector<QueryResult> batched;
  for (auto& t : tickets) {
    batched.push_back(t.result.get());
    ASSERT_TRUE(batched.back().ok());
    EXPECT_EQ(batched.back().served, ServedBy::kBatched);
  }
  for (VertexId s = 0; s < 8; ++s) {
    const QueryResult hit = svc.Submit(BfsQuery(s)).result.get();
    EXPECT_EQ(hit.served, ServedBy::kCache) << "source " << s;
    EXPECT_EQ(hit.value_bytes, batched[s].value_bytes) << "source " << s;
    EXPECT_EQ(hit.value_fingerprint, batched[s].value_fingerprint)
        << "source " << s;
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.batches, 1u);
  EXPECT_EQ(s.cache_hits, 8u);
}

// The ResultCache itself, unit-level: refresh-on-insert, LRU order, and the
// capacity-zero no-op.
TEST(BatchCacheTest, ResultCacheUnitBehavior) {
  ResultCache cache(2);
  auto key = [](VertexId s) {
    CacheKey k;
    k.kind = 0;
    k.source = s;
    return k;
  };
  auto answer = [](uint64_t vfp) {
    CachedAnswer a;
    a.value_fingerprint = vfp;
    return a;
  };
  cache.Insert(key(1), answer(11));
  cache.Insert(key(2), answer(22));
  CachedAnswer out;
  ASSERT_TRUE(cache.Lookup(key(1), &out));  // touches 1: LRU is now 2
  EXPECT_EQ(out.value_fingerprint, 11u);
  cache.Insert(key(3), answer(33));  // evicts 2
  EXPECT_FALSE(cache.Lookup(key(2), &out));
  EXPECT_TRUE(cache.Lookup(key(1), &out));
  EXPECT_TRUE(cache.Lookup(key(3), &out));
  EXPECT_EQ(cache.evictions(), 1u);
  // Re-inserting an existing key refreshes in place, no eviction.
  cache.Insert(key(1), answer(111));
  ASSERT_TRUE(cache.Lookup(key(1), &out));
  EXPECT_EQ(out.value_fingerprint, 111u);
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);

  ResultCache off(0);
  off.Insert(key(1), answer(11));
  EXPECT_FALSE(off.Lookup(key(1), &out));
  EXPECT_EQ(off.size(), 0u);
}

}  // namespace
}  // namespace simdx::service
