// The PR's acceptance sweep: a 200-query mixed workload (BFS / SSSP / PPR /
// k-Core from varied sources) with faults armed on 10% of the queries, run
// at service worker counts {1, 3, 8}. Containment contract:
//   * every NON-faulted query completes with a StatsFingerprint bit-identical
//     to a one-shot Engine::Run of the same program (the oracle);
//   * every faulted query either returns kFaulted (single attempt) or
//     succeeds via RobustRun retry — and when it succeeds, its fingerprint
//     is oracle-pure too (resume determinism);
//   * the service neither deadlocks nor aborts, and the ledger identities
//     hold exactly.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "algos/algos.h"
#include "bench/common.h"
#include "core/engine.h"
#include "graph/generators.h"
#include "service/service.h"
#include "simt/device.h"

namespace simdx::service {
namespace {

EngineOptions SweepEngineOptions() {
  EngineOptions o;
  o.sim_worker_threads = 64;
  o.host_threads = 2;
  o.parallel_replay_min_records = 0;  // exercise the partitioned drain
  return o;
}

struct WorkloadQuery {
  Query query;
  std::string oracle_key;
};

VertexId HubSource(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 1; v < g.vertex_count(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) {
      best = v;
    }
  }
  return best;
}

// Deterministic mixed workload: kind/source/k from an LCG, every 10th query
// armed with an always-firing fault (iteration-start / frontier hooks fire
// in push AND pull iterations), alternating between a single attempt (must
// surface kFaulted) and a retry budget (must recover). Armed queries start
// from the hub on a traversal kind, guaranteeing a multi-iteration run —
// a fault armed at iteration 1 of a run that converges at iteration 0 would
// never fire and the assertions below could not distinguish "contained"
// from "skipped".
std::vector<WorkloadQuery> BuildWorkload(const Graph& g, size_t count) {
  const VertexId hub = HubSource(g);
  std::vector<WorkloadQuery> out;
  out.reserve(count);
  uint64_t state = 0x9E3779B97F4A7C15ull;
  auto next = [&state]() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (size_t i = 0; i < count; ++i) {
    WorkloadQuery wq;
    const uint64_t r = next();
    wq.query.kind = static_cast<QueryKind>(r % 4);
    wq.query.source = static_cast<VertexId>(next() % g.vertex_count());
    wq.query.k = 2 + static_cast<uint32_t>(next() % 3);
    if (i % 10 == 5) {
      constexpr QueryKind kTraversals[] = {QueryKind::kBfs, QueryKind::kSssp,
                                           QueryKind::kPpr};
      wq.query.kind = kTraversals[(i / 10) % 3];
      wq.query.source = hub;
      wq.query.fault_spec =
          (i % 20 == 5) ? "iteration-start@1" : "frontier@1";
      // Alternate: bare single attempt vs a retry budget.
      wq.query.max_attempts = (i % 40 == 5) ? 1 : 3;
    }
    std::string key = std::string(ToString(wq.query.kind)) + "|" +
                      std::to_string(wq.query.source);
    if (wq.query.kind == QueryKind::kKCore) {
      key += "|" + std::to_string(wq.query.k);
    }
    wq.oracle_key = std::move(key);
    out.push_back(std::move(wq));
  }
  return out;
}

// One-shot Engine::Run fingerprints, computed lazily per distinct program.
class Oracle {
 public:
  explicit Oracle(const Graph& g) : g_(g) {}

  const std::string& Fingerprint(const WorkloadQuery& wq) {
    auto it = cache_.find(wq.oracle_key);
    if (it != cache_.end()) {
      return it->second;
    }
    const EngineOptions o = SweepEngineOptions();
    std::string fp;
    switch (wq.query.kind) {
      case QueryKind::kBfs:
        fp = bench::StatsFingerprint(RunBfs(g_, wq.query.source, MakeK40(), o));
        break;
      case QueryKind::kSssp:
        fp = bench::StatsFingerprint(RunSssp(g_, wq.query.source, MakeK40(), o));
        break;
      case QueryKind::kPpr:
        fp = bench::StatsFingerprint(RunPpr(g_, wq.query.source, MakeK40(), o));
        break;
      case QueryKind::kKCore:
        fp = bench::StatsFingerprint(RunKCore(g_, wq.query.k, MakeK40(), o));
        break;
    }
    return cache_.emplace(wq.oracle_key, std::move(fp)).first->second;
  }

 private:
  const Graph& g_;
  std::map<std::string, std::string> cache_;
};

TEST(ContainmentTest, MixedWorkloadWithFaultsStaysOraclePure) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 3), false);
  const auto workload = BuildWorkload(g, 200);
  Oracle oracle(g);

  for (uint32_t workers : {1u, 3u, 8u}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    ServiceOptions so;
    so.workers = workers;
    so.queue_capacity = workload.size();  // no shedding: every query runs
    so.engine = SweepEngineOptions();
    so.checkpoint_every = 2;
    GraphService svc(g, so);

    std::vector<GraphService::Ticket> tickets;
    tickets.reserve(workload.size());
    for (const WorkloadQuery& wq : workload) {
      auto t = svc.Submit(wq.query);
      ASSERT_EQ(t.verdict, AdmissionVerdict::kAdmitted) << wq.oracle_key;
      tickets.push_back(std::move(t));
    }
    svc.Drain();

    uint64_t faulted = 0;
    uint64_t recovered = 0;
    for (size_t i = 0; i < workload.size(); ++i) {
      const WorkloadQuery& wq = workload[i];
      const QueryResult r = tickets[i].result.get();
      const bool armed = !wq.query.fault_spec.empty();
      if (!armed) {
        // Containment: a clean query next to a faulting one is untouched.
        ASSERT_EQ(r.outcome, RunOutcome::kCompleted) << wq.oracle_key;
        EXPECT_EQ(r.attempts, 1u) << wq.oracle_key;
        EXPECT_EQ(r.fingerprint, oracle.Fingerprint(wq)) << wq.oracle_key;
      } else if (r.ok()) {
        // Recovered via retry — and the recovery is oracle-pure.
        ++recovered;
        EXPECT_GT(r.attempts, 1u) << wq.oracle_key;
        EXPECT_EQ(r.fingerprint, oracle.Fingerprint(wq)) << wq.oracle_key;
      } else {
        ++faulted;
        EXPECT_EQ(r.outcome, RunOutcome::kFaulted) << wq.oracle_key;
        EXPECT_EQ(r.attempts, wq.query.max_attempts) << wq.oracle_key;
      }
    }
    // 20 armed queries: the single-attempt ones (i % 40 == 5) must fault,
    // the retry-budget ones must recover.
    EXPECT_GT(faulted, 0u);
    EXPECT_GT(recovered, 0u);
    EXPECT_EQ(faulted + recovered, 20u);

    const ServiceStats s = svc.stats();
    EXPECT_EQ(s.submitted, workload.size());
    EXPECT_EQ(s.admitted, workload.size());
    EXPECT_EQ(s.completed, workload.size() - faulted);
    EXPECT_EQ(s.faulted, faulted);
    EXPECT_GE(s.retries, recovered);  // each recovery burned >= 1 retry
  }
}

}  // namespace
}  // namespace simdx::service
