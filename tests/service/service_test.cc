// GraphService unit tests: admission verdicts (queue-full / deadline /
// invalid), end-to-end deadlines, cancellation of pending and running
// queries, the overload-shedding ladder, and the ledger identities. The
// fault-containment sweep (faults in a concurrent mixed workload, oracle
// fingerprints) lives in tests/service/containment_test.cc.
#include "service/service.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algos/algos.h"
#include "bench/common.h"
#include "graph/generators.h"
#include "simt/device.h"

namespace simdx::service {
namespace {

Graph TestGraph() { return Graph::FromEdges(GenerateRmat(8, 8, 3), false); }

ServiceOptions SmallService(uint32_t workers, uint32_t capacity) {
  ServiceOptions o;
  o.workers = workers;
  o.queue_capacity = capacity;
  o.engine.sim_worker_threads = 64;
  return o;
}

TEST(ServiceTest, AdmittedQueryMatchesOneShotEngineRun) {
  const Graph g = TestGraph();
  GraphService svc(g, SmallService(2, 16));

  Query q;
  q.kind = QueryKind::kBfs;
  q.source = 3;
  auto ticket = svc.Submit(q);
  ASSERT_EQ(ticket.verdict, AdmissionVerdict::kAdmitted);
  const QueryResult r = ticket.result.get();
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.outcome, RunOutcome::kCompleted);
  EXPECT_EQ(r.attempts, 1u);

  // The oracle: a one-shot Engine::Run of the same program.
  EngineOptions o;
  o.sim_worker_threads = 64;
  BfsProgram program;
  program.source = 3;
  Engine<BfsProgram> engine(g, MakeK40(), o);
  const auto oracle = engine.Run(program);
  EXPECT_EQ(r.fingerprint, bench::StatsFingerprint(oracle));
}

TEST(ServiceTest, EveryKindRunsAndValuesRoundTrip) {
  const Graph g = TestGraph();
  GraphService svc(g, SmallService(3, 32));
  for (QueryKind kind : {QueryKind::kBfs, QueryKind::kSssp, QueryKind::kPpr,
                         QueryKind::kKCore}) {
    Query q;
    q.kind = kind;
    q.source = 5;
    q.k = 3;
    q.want_values = true;
    auto ticket = svc.Submit(q);
    ASSERT_EQ(ticket.verdict, AdmissionVerdict::kAdmitted) << ToString(kind);
    const QueryResult r = ticket.result.get();
    EXPECT_TRUE(r.ok()) << ToString(kind);
    EXPECT_FALSE(r.fingerprint.empty()) << ToString(kind);
    EXPECT_FALSE(r.value_bytes.empty()) << ToString(kind);
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.admitted, 4u);
  EXPECT_EQ(s.completed, 4u);
}

TEST(ServiceTest, InvalidQueriesAreRejectedNotExecuted) {
  const Graph g = TestGraph();
  GraphService svc(g, SmallService(1, 8));

  Query bad_source;
  bad_source.source = g.vertex_count() + 7;
  EXPECT_EQ(svc.Submit(bad_source).verdict, AdmissionVerdict::kRejectedInvalid);

  Query bad_k;
  bad_k.kind = QueryKind::kKCore;
  bad_k.k = 0;
  EXPECT_EQ(svc.Submit(bad_k).verdict, AdmissionVerdict::kRejectedInvalid);

  // An unparseable fault spec must be rejected at admission — handed to the
  // engine it would abort the whole process.
  Query bad_faults;
  bad_faults.source = 1;
  bad_faults.fault_spec = "bogus@@@";
  EXPECT_EQ(svc.Submit(bad_faults).verdict, AdmissionVerdict::kRejectedInvalid);

  // A duplicated fault term is a spec error too (satellite: parser rejects).
  Query dup_faults;
  dup_faults.source = 1;
  dup_faults.fault_spec = "replay@3,replay@3";
  EXPECT_EQ(svc.Submit(dup_faults).verdict, AdmissionVerdict::kRejectedInvalid);

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, 4u);
  EXPECT_EQ(s.rejected_invalid, 4u);
  EXPECT_EQ(s.admitted, 0u);
}

TEST(ServiceTest, QueueFullSheds) {
  const Graph g = TestGraph();
  // One worker, tiny queue: flood it and count the sheds. The worker may
  // drain some entries mid-flood, so assert the identity rather than an
  // exact shed count.
  GraphService svc(g, SmallService(1, 2));
  uint32_t admitted = 0;
  uint32_t shed = 0;
  std::vector<GraphService::Ticket> tickets;
  for (int i = 0; i < 64; ++i) {
    Query q;
    q.kind = QueryKind::kBfs;
    q.source = static_cast<VertexId>(i % g.vertex_count());
    auto t = svc.Submit(q);
    if (t.verdict == AdmissionVerdict::kAdmitted) {
      ++admitted;
      tickets.push_back(std::move(t));
    } else {
      ASSERT_EQ(t.verdict, AdmissionVerdict::kShedQueueFull);
      ++shed;
    }
  }
  EXPECT_GT(shed, 0u) << "a 2-deep queue cannot absorb a 64-query flood";
  svc.Drain();
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.submitted, 64u);
  EXPECT_EQ(s.admitted, admitted);
  EXPECT_EQ(s.shed_queue_full, shed);
  EXPECT_EQ(s.completed, admitted);
  for (auto& t : tickets) {
    EXPECT_TRUE(t.result.get().ok());
  }
}

TEST(ServiceTest, LadderEngagesUnderFloodAndStepsDown) {
  const Graph g = TestGraph();
  ServiceOptions o = SmallService(1, 8);
  o.high_water = 0.5;
  o.rung2_water = 0.75;
  o.low_water = 0.25;
  GraphService svc(g, o);
  for (int i = 0; i < 32; ++i) {
    Query q;
    q.source = static_cast<VertexId>(i % g.vertex_count());
    svc.Submit(q);
  }
  svc.Drain();
  const ServiceStats s = svc.stats();
  // The flood must have pushed the ladder up to rung 2 and the drain back
  // down to 0, each transition recorded.
  ASSERT_GE(s.ladder.size(), 2u);
  bool saw_rung1 = false;
  bool saw_rung2 = false;
  for (const DowngradeEvent& e : s.ladder) {
    if (e.action == "shed:admission-strict") {
      saw_rung1 = true;
    }
    if (e.action == "shed:serial-queries") {
      saw_rung2 = true;
    }
  }
  EXPECT_TRUE(saw_rung1);
  EXPECT_TRUE(saw_rung2);
  EXPECT_EQ(svc.ladder_rung(), 0u) << "drained service must be back at rung 0";
  // Rung-2 queries ran the serial drain — still fingerprint-pure, so they
  // all completed (verdict identity holds).
  EXPECT_EQ(s.completed + s.deadline_exceeded + s.cancelled, s.admitted);
}

TEST(ServiceTest, CancelPendingQueryResolvesCancelled) {
  const Graph g = TestGraph();
  GraphService svc(g, SmallService(1, 32));
  // Stuff the single worker, then cancel the tail entries while queued.
  std::vector<GraphService::Ticket> tickets;
  for (int i = 0; i < 16; ++i) {
    Query q;
    q.source = 1;
    auto t = svc.Submit(q);
    ASSERT_EQ(t.verdict, AdmissionVerdict::kAdmitted);
    tickets.push_back(std::move(t));
  }
  // Cancel the last ones — most likely still pending behind the worker.
  uint32_t cancel_requested = 0;
  for (size_t i = 8; i < tickets.size(); ++i) {
    if (svc.Cancel(tickets[i].query_id)) {
      ++cancel_requested;
    }
  }
  EXPECT_GT(cancel_requested, 0u);
  svc.Drain();
  uint32_t cancelled = 0;
  for (auto& t : tickets) {
    const QueryResult r = t.result.get();
    if (r.outcome == RunOutcome::kCancelled) {
      ++cancelled;
      EXPECT_EQ(r.run_ms, 0.0) << "cancelled-in-queue queries must not run";
    } else {
      EXPECT_TRUE(r.ok());
    }
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.cancelled, cancelled);
  EXPECT_EQ(s.completed + s.cancelled, s.admitted);
  // Unknown ids are reported, not invented.
  EXPECT_FALSE(svc.Cancel(9999999));
}

TEST(ServiceTest, DeadlineExpiredInQueueNeverRuns) {
  const Graph g = TestGraph();
  GraphService svc(g, SmallService(1, 64));
  // Head-of-line blockers with no deadline, then a batch with a deadline
  // far smaller than the backlog takes to clear.
  std::vector<GraphService::Ticket> blockers;
  for (int i = 0; i < 8; ++i) {
    Query q;
    q.source = 2;
    blockers.push_back(svc.Submit(q));
  }
  std::vector<GraphService::Ticket> doomed;
  for (int i = 0; i < 4; ++i) {
    Query q;
    q.source = 2;
    q.deadline_ms = 1e-3;  // sub-microsecond: expires while queued
    auto t = svc.Submit(q);
    // Predictive shedding may already refuse it once the EWMA warms up;
    // both verdicts are legitimate here.
    if (t.verdict == AdmissionVerdict::kAdmitted) {
      doomed.push_back(std::move(t));
    } else {
      EXPECT_EQ(t.verdict, AdmissionVerdict::kShedDeadline);
    }
  }
  svc.Drain();
  for (auto& t : doomed) {
    const QueryResult r = t.result.get();
    EXPECT_EQ(r.outcome, RunOutcome::kDeadlineExceeded);
    EXPECT_EQ(r.run_ms, 0.0);
    EXPECT_TRUE(r.fingerprint.empty());
  }
  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.expired_in_queue, doomed.size());
  for (auto& t : blockers) {
    EXPECT_TRUE(t.result.get().ok());
  }
}

TEST(ServiceTest, PredictiveDeadlineShedAfterEwmaWarmup) {
  const Graph g = TestGraph();
  GraphService svc(g, SmallService(1, 64));
  // Warm the BFS EWMA with a completed query.
  {
    Query q;
    q.source = 1;
    auto t = svc.Submit(q);
    ASSERT_EQ(t.verdict, AdmissionVerdict::kAdmitted);
    ASSERT_TRUE(t.result.get().ok());
  }
  // Build a backlog, then ask for an impossible deadline: with a warm EWMA
  // and a deep queue the estimate must trip kShedDeadline at admission.
  for (int i = 0; i < 32; ++i) {
    Query q;
    q.source = 1;
    svc.Submit(q);
  }
  Query hopeless;
  hopeless.source = 1;
  hopeless.deadline_ms = 1e-6;
  const auto t = svc.Submit(hopeless);
  EXPECT_EQ(t.verdict, AdmissionVerdict::kShedDeadline);
  svc.Drain();
  EXPECT_GE(svc.stats().shed_deadline, 1u);
}

TEST(ServiceTest, SubmitAfterShutdownSheds) {
  const Graph g = TestGraph();
  GraphService svc(g, SmallService(1, 8));
  svc.Shutdown();
  Query q;
  q.source = 0;
  EXPECT_EQ(svc.Submit(q).verdict, AdmissionVerdict::kShedQueueFull);
}

}  // namespace
}  // namespace simdx::service
