// The transport-resilience verification harness: a chaos proxy between
// retrying clients and the real server, injecting seeded delays, splits,
// stalls, duplicate flushes, drops and mid-stream resets. The contract
// being gated:
//   * every COMPLETED call's answer is value-bit-equal to the direct-Submit
//     oracle (chaos may slow or kill a call, never corrupt an answer);
//   * every FAILED call carries a typed ClientStatus and lands within the
//     retry policy's worst-case wall bound (no hangs);
//   * after the sweep tears down, the process fd count returns to its
//     baseline (no leaked sockets on any path, including the violent ones).
//
// Sweep scale responds to the nightly env knobs: SIMDX_SWEEP_SEEDS chooses
// how many proxy seeds run (each seed is an independent fault schedule) and
// SIMDX_SWEEP_CHAOS_DENSITY multiplies every fault probability.
#include "service/chaos.h"

#include <dirent.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algos/algos.h"
#include "core/fingerprint.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "service/retry.h"
#include "service/server.h"
#include "service/service.h"

namespace simdx::service {
namespace {

uint64_t EnvU64(const char* name, uint64_t def) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::strtoull(v, nullptr, 10) : def;
}

double EnvDouble(const char* name, double def) {
  const char* v = std::getenv(name);
  return (v != nullptr && *v != '\0') ? std::strtod(v, nullptr) : def;
}

int CountOpenFds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) {
    return -1;
  }
  int n = 0;
  while (::readdir(d) != nullptr) {
    ++n;
  }
  ::closedir(d);
  return n;
}

std::string UniquePath(const char* tag) {
  static std::atomic<int> counter{0};
  return std::string("/tmp/simdx_") + tag + "_" +
         std::to_string(::getpid()) + "_" +
         std::to_string(counter.fetch_add(1) + 1) + ".sock";
}

// ---------------------------------------------------------------------------
// Spec grammar.

TEST(ChaosSpecTest, ParsesTheFullGrammar) {
  ChaosSpec s;
  std::string err;
  ASSERT_TRUE(ChaosSpec::Parse(
      "seed=7,delay@p=0.2:ms=3,split@p=0.5,stall@p=0.1:ms=25,dup@p=0.05,"
      "drop@p=0.04,reset@p=0.02",
      &s, &err))
      << err;
  EXPECT_EQ(s.seed, 7u);
  EXPECT_DOUBLE_EQ(s.delay_p, 0.2);
  EXPECT_DOUBLE_EQ(s.delay_ms, 3.0);
  EXPECT_DOUBLE_EQ(s.split_p, 0.5);
  EXPECT_DOUBLE_EQ(s.stall_p, 0.1);
  EXPECT_DOUBLE_EQ(s.stall_ms, 25.0);
  EXPECT_DOUBLE_EQ(s.dup_p, 0.05);
  EXPECT_DOUBLE_EQ(s.drop_p, 0.04);
  EXPECT_DOUBLE_EQ(s.reset_p, 0.02);
  EXPECT_TRUE(s.armed());
}

TEST(ChaosSpecTest, DescribeRoundTripsThroughParse) {
  const ChaosSpec def = ChaosSpec::Default();
  ChaosSpec back;
  std::string err;
  ASSERT_TRUE(ChaosSpec::Parse(def.Describe(), &back, &err)) << err;
  EXPECT_EQ(back.Describe(), def.Describe());
}

TEST(ChaosSpecTest, RejectsHostileSpecsTyped) {
  ChaosSpec s;
  std::string err;
  EXPECT_FALSE(ChaosSpec::Parse("", &s, &err));
  EXPECT_FALSE(ChaosSpec::Parse("delay@p=0.1,delay@p=0.2", &s, &err));
  EXPECT_TRUE(err.find("duplicate") != std::string::npos) << err;
  EXPECT_FALSE(ChaosSpec::Parse("seed=1,seed=2", &s, &err));
  EXPECT_FALSE(ChaosSpec::Parse("explode@p=0.5", &s, &err));
  EXPECT_FALSE(ChaosSpec::Parse("delay@p=1.5", &s, &err));      // p > 1
  EXPECT_FALSE(ChaosSpec::Parse("delay@p=banana", &s, &err));
  EXPECT_FALSE(ChaosSpec::Parse("drop@p=0.1:ms=5", &s, &err));  // no ms knob
  EXPECT_FALSE(ChaosSpec::Parse("seed=xyz", &s, &err));
  EXPECT_FALSE(ChaosSpec::Parse("delay@p=0.1,,split@p=0.2", &s, &err));
}

TEST(ChaosSpecTest, ScalingClampsToProbabilityRange) {
  const ChaosSpec s = ChaosSpec::Default().Scaled(100.0);
  EXPECT_LE(s.split_p, 1.0);
  EXPECT_GE(s.split_p, ChaosSpec::Default().split_p);
  const ChaosSpec z = ChaosSpec::Default().Scaled(0.0);
  EXPECT_FALSE(z.armed());
}

// ---------------------------------------------------------------------------
// Retry policy math.

TEST(RetryPolicyTest, BackoffIsDeterministicAndCapped) {
  RetryPolicy pol;
  std::mt19937_64 a(pol.jitter_seed);
  std::mt19937_64 b(pol.jitter_seed);
  for (uint32_t k = 0; k < 12; ++k) {
    const double x = RetryBackoffMs(pol, k, a);
    const double y = RetryBackoffMs(pol, k, b);
    EXPECT_DOUBLE_EQ(x, y) << "retry " << k;
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, pol.backoff_max_ms * (1.0 + pol.jitter_fraction) + 1e-9);
  }
}

TEST(RetryPolicyTest, MaxCallWallBoundIsFiniteOnlyWhenBudgetsAre) {
  RetryPolicy pol;  // defaults carry non-zero budgets
  const double bound = MaxCallWallMs(pol);
  EXPECT_GT(bound, 0.0);
  EXPECT_TRUE(std::isfinite(bound));
  RetryPolicy unbounded = pol;
  unbounded.timeouts.recv_ms = 0.0;
  EXPECT_FALSE(std::isfinite(MaxCallWallMs(unbounded)));
}

// ---------------------------------------------------------------------------
// Proxy + retrying client against the real server.

struct Harness {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<GraphService> service;
  std::unique_ptr<SocketServer> server;
  std::string uds;
  std::string error;
  bool ok = false;

  explicit Harness(ServerOptions opts = {}, ServiceOptions so = {}) {
    graph = std::make_unique<Graph>(
        Graph::FromEdges(GenerateRmat(7, 8, 3), false));
    service = std::make_unique<GraphService>(*graph, so);
    uds = UniquePath("chaos_backend");
    opts.uds_path = uds;
    server = std::make_unique<SocketServer>(*service, opts);
    ok = server->Start(&error);
  }
  ~Harness() {
    server->Stop();
    service->Shutdown();
  }

  uint64_t OracleVfp(VertexId source) const {
    ServiceOptions so;
    const auto r = RunBfs(*graph, source, so.device, so.engine);
    return ValueBytesFingerprint(r.values.data(),
                                 r.values.size() * sizeof(uint32_t));
  }
};

wire::RequestFrame BfsRequest(VertexId source) {
  Query q;
  q.kind = QueryKind::kBfs;
  q.source = source;
  q.want_values = true;
  return ToRequestFrame(q);
}

TEST(ChaosProxyTest, UnarmedProxyIsTransparent) {
  Harness h;
  ASSERT_TRUE(h.ok) << h.error;
  ChaosSpec spec;  // nothing armed: pure byte forwarding
  ChaosProxy proxy(spec, UniquePath("chaos_front"), h.uds);
  std::string err;
  ASSERT_TRUE(proxy.Start(&err)) << err;

  RetryPolicy pol;
  RetryingClient rc(pol);
  rc.TargetUds(proxy.listen_path());
  wire::Frame reply;
  ASSERT_EQ(rc.Call(BfsRequest(5), &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  EXPECT_EQ(reply.response.value_fingerprint, h.OracleVfp(5));
  EXPECT_EQ(rc.ledger().attempts, 1u);  // no faults, no retries
  rc.Close();
  proxy.Stop();
  const ChaosStats& ps = proxy.stats();
  EXPECT_EQ(ps.connections, 1u);
  EXPECT_EQ(ps.faults(), 0u);
  EXPECT_GT(ps.bytes_in, 0u);
  EXPECT_EQ(ps.bytes_in, ps.bytes_out);  // transparent: every byte forwarded
}

TEST(ChaosProxyTest, RetryingClientSurvivesEndpointRestart) {
  Harness h;
  ASSERT_TRUE(h.ok) << h.error;
  const std::string front = UniquePath("chaos_front");
  ChaosSpec spec;  // unarmed: the "fault" is the endpoint dying entirely
  auto proxy1 = std::make_unique<ChaosProxy>(spec, front, h.uds);
  std::string err;
  ASSERT_TRUE(proxy1->Start(&err)) << err;

  RetryPolicy pol;
  RetryingClient rc(pol);
  rc.TargetUds(front);
  wire::Frame reply;
  ASSERT_EQ(rc.Call(BfsRequest(1), &reply, &err), ClientStatus::kOk) << err;

  // Kill the endpoint and resurrect it on the same path: the next call's
  // first attempt fails on the dead connection, the retry reconnects.
  proxy1->Stop();
  proxy1.reset();
  ChaosProxy proxy2(spec, front, h.uds);
  ASSERT_TRUE(proxy2.Start(&err)) << err;
  ASSERT_EQ(rc.Call(BfsRequest(2), &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  EXPECT_EQ(reply.response.value_fingerprint, h.OracleVfp(2));
  EXPECT_GE(rc.ledger().reconnects, 2u);
  EXPECT_GE(rc.ledger().attempts, 3u);
  EXPECT_EQ(rc.ledger().failed, 0u);
  rc.Close();
  proxy2.Stop();
}

// The sweep: every outcome typed, every answer bit-equal, no leaked fd.
TEST(ChaosSweepTest, FaultedTransportNeverCorruptsOrHangs) {
  const uint64_t rounds =
      std::min<uint64_t>(std::max<uint64_t>(EnvU64("SIMDX_SWEEP_SEEDS", 2), 1),
                         64);
  const double density = EnvDouble("SIMDX_SWEEP_CHAOS_DENSITY", 1.0);

  ServerOptions sopts;
  // The server runs with its own resilience armed — chaos must not be able
  // to park garbage connections on it either.
  sopts.header_timeout_ms = 500.0;
  sopts.idle_timeout_ms = 2000.0;
  sopts.max_pipeline = 8;
  Harness h(sopts);
  ASSERT_TRUE(h.ok) << h.error;

  constexpr int kSources = 16;
  std::vector<uint64_t> oracle;
  for (int s = 0; s < kSources; ++s) {
    oracle.push_back(h.OracleVfp(static_cast<VertexId>(s)));
  }
  // Baseline AFTER the harness and oracles exist (lazy pools and arenas are
  // process state, not sweep leakage).
  const int fd_baseline = CountOpenFds();
  ASSERT_GT(fd_baseline, 0);

  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> rejected{0};
  std::atomic<uint64_t> failed{0};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> hangs{0};
  std::atomic<uint64_t> untyped{0};

  for (uint64_t round = 0; round < rounds; ++round) {
    ChaosSpec spec = ChaosSpec::Default().Scaled(density);
    spec.seed = round + 1;
    ChaosProxy proxy(spec, UniquePath("chaos_sweep"), h.uds);
    std::string perr;
    ASSERT_TRUE(proxy.Start(&perr)) << perr;

    constexpr int kClients = 3;
    constexpr int kCallsPerClient = 5;
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c, round] {
        RetryPolicy pol;
        pol.jitter_seed = round * 100 + static_cast<uint64_t>(c) + 1;
        pol.timeouts = ClientTimeouts{1000.0, 1000.0, 3000.0};
        const double wall_bound_ms = MaxCallWallMs(pol) + 2000.0;
        RetryingClient rc(pol);
        rc.TargetUds(proxy.listen_path());
        for (int m = 0; m < kCallsPerClient; ++m) {
          const int src = (c * kCallsPerClient + m) % kSources;
          wire::Frame reply;
          std::string err;
          const auto t0 = std::chrono::steady_clock::now();
          const ClientStatus st =
              rc.Call(BfsRequest(static_cast<VertexId>(src)), &reply, &err);
          const double el = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
          if (el > wall_bound_ms) {
            hangs.fetch_add(1);
          }
          if (st == ClientStatus::kOk) {
            if (reply.type == wire::MsgType::kResponse) {
              completed.fetch_add(1);
              if (reply.response.value_fingerprint != oracle[src]) {
                mismatches.fetch_add(1);
              }
            } else {
              // A typed server reject (e.g. kBadFrame after chaos mangled
              // our request bytes) is a SUCCESSFUL transport outcome.
              rejected.fetch_add(1);
            }
          } else {
            failed.fetch_add(1);
            if (ToString(st) == std::string("?")) {
              untyped.fetch_add(1);
            }
          }
        }
        rc.Close();
      });
    }
    for (auto& t : threads) {
      t.join();
    }
    proxy.Stop();
    const ChaosStats& ps = proxy.stats();
    // The proxy genuinely interfered (density 0 in a nightly config is the
    // only legitimate quiet case).
    if (spec.armed()) {
      EXPECT_GT(ps.chunks, 0u) << "round " << round;
    }
  }

  const uint64_t total = completed.load() + rejected.load() + failed.load();
  EXPECT_EQ(total, rounds * 3 * 5);
  EXPECT_EQ(mismatches.load(), 0u) << "chaos corrupted an accepted answer";
  EXPECT_EQ(hangs.load(), 0u) << "a call exceeded its worst-case wall bound";
  EXPECT_EQ(untyped.load(), 0u);
  // Under the default mix most calls must still get through — the retry
  // layer exists to WIN against this fault density, not to lose politely.
  if (density <= 1.0) {
    EXPECT_GT(completed.load(), total / 2);
  }

  // fd-leak gate: closes trail teardown by a poll cycle; wait them out.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (CountOpenFds() > fd_baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LE(CountOpenFds(), fd_baseline);
}

}  // namespace
}  // namespace simdx::service
