// Socket dispatch loop contract: answers over UDS/TCP are bit-equal to
// direct Submit, hostile bytes elicit typed rejects (fatal ones close the
// stream, recoverable ones don't), torn writes reassemble, the admission
// verdict taxonomy crosses the wire intact, and the deadline that crosses is
// RELATIVE — the TSan CI job runs this test over the dispatch loop's
// thread + the service workers + concurrent client threads.
#include "service/server.h"

#include <dirent.h>
#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algos/algos.h"
#include "core/fingerprint.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "service/client.h"

namespace simdx::service {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<Graph>(
        Graph::FromEdges(GenerateRmat(7, 8, 3), false));
    ServiceOptions so;
    so.workers = 2;
    service_ = std::make_unique<GraphService>(*graph_, so);
    ServerOptions opts;
    opts.uds_path = "/tmp/simdx_server_test_" + std::to_string(::getpid()) +
                    "_" + std::to_string(++instance_) + ".sock";
    opts.tcp = true;  // ephemeral loopback port
    server_ = std::make_unique<SocketServer>(*service_, opts);
    std::string err;
    ASSERT_TRUE(server_->Start(&err)) << err;
  }

  void TearDown() override {
    server_->Stop();
    service_->Shutdown();
  }

  uint64_t OracleVfp(VertexId source) {
    ServiceOptions so;
    const auto r = RunBfs(*graph_, source, so.device, so.engine);
    return ValueBytesFingerprint(r.values.data(),
                                 r.values.size() * sizeof(uint32_t));
  }

  static wire::RequestFrame BfsRequest(VertexId source) {
    Query q;
    q.kind = QueryKind::kBfs;
    q.source = source;
    q.want_values = true;
    return ToRequestFrame(q);
  }

  static int instance_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<GraphService> service_;
  std::unique_ptr<SocketServer> server_;
};

int ServerTest::instance_ = 0;

TEST_F(ServerTest, UdsAnswerIsBitEqualToDirectSubmit) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk)
      << err;
  wire::Frame reply;
  ASSERT_EQ(cli.Call(BfsRequest(0), &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  const uint64_t oracle = OracleVfp(0);
  EXPECT_EQ(reply.response.value_fingerprint, oracle);
  EXPECT_EQ(ValueBytesFingerprint(reply.response.value_bytes.data(),
                                  reply.response.value_bytes.size()),
            oracle);
}

TEST_F(ServerTest, TcpAnswerMatchesToo) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectTcp("127.0.0.1", server_->tcp_port(), &err),
            ClientStatus::kOk)
      << err;
  wire::Frame reply;
  ASSERT_EQ(cli.Call(BfsRequest(1), &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  EXPECT_EQ(reply.response.value_fingerprint, OracleVfp(1));
}

TEST_F(ServerTest, ConcurrentClientsAllGetTheirOwnAnswers) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<uint64_t> oracle;
  for (int s = 0; s < kClients * kPerClient; ++s) {
    oracle.push_back(OracleVfp(static_cast<VertexId>(s)));
  }
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      BlockingClient cli;
      std::string err;
      if (cli.ConnectUds(server_->uds_path(), &err) != ClientStatus::kOk) {
        failures[c] = kPerClient;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const int s = c * kPerClient + i;
        wire::Frame reply;
        if (cli.Call(BfsRequest(static_cast<VertexId>(s)), &reply, &err) !=
                ClientStatus::kOk ||
            reply.type != wire::MsgType::kResponse ||
            reply.response.value_fingerprint != oracle[s]) {
          ++failures[c];
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
}

TEST_F(ServerTest, RawGarbageGetsBadFrameRejectThenClose) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";  // wrong protocol entirely
  ASSERT_EQ(cli.SendRaw(garbage, sizeof(garbage) - 1, &err), ClientStatus::kOk);
  wire::Frame reply;
  ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kReject);
  EXPECT_EQ(reply.reject.code,
            static_cast<uint8_t>(wire::RejectCode::kBadFrame));
  // Frame sync is gone: the server closes after flushing the reject.
  EXPECT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kRecvFailed);
}

TEST_F(ServerTest, OutOfRangeKindByteIsInvalidQueryNotACrash) {
  // The codec carries the hostile byte intact; ADMISSION refuses it before
  // any per-kind array is indexed (the kind-byte bound-guard fix). The
  // connection survives — the frame itself was well-formed.
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::RequestFrame rf = BfsRequest(0);
  rf.kind = 200;
  wire::Frame reply;
  ASSERT_EQ(cli.Call(rf, &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kReject);
  EXPECT_EQ(reply.reject.code,
            static_cast<uint8_t>(wire::RejectCode::kInvalidQuery));
  ASSERT_EQ(cli.Call(BfsRequest(0), &reply, &err), ClientStatus::kOk);
  EXPECT_EQ(reply.type, wire::MsgType::kResponse);
}

TEST_F(ServerTest, InvalidSourceMapsToInvalidQueryReject) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::RequestFrame rf = BfsRequest(0);
  rf.source = 0xFFFFFFFFu;  // far beyond the loaded graph
  wire::Frame reply;
  ASSERT_EQ(cli.Call(rf, &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kReject);
  EXPECT_EQ(reply.reject.code,
            static_cast<uint8_t>(wire::RejectCode::kInvalidQuery));
}

TEST_F(ServerTest, TornWriteReassemblesIntoANormalAnswer) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::RequestFrame rf = BfsRequest(2);
  rf.request_id = 77;
  std::vector<uint8_t> bytes;
  wire::EncodeRequest(rf, &bytes);
  ASSERT_EQ(cli.SendRaw(bytes.data(), 9, &err), ClientStatus::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(cli.SendRaw(bytes.data() + 9, bytes.size() - 9, &err),
            ClientStatus::kOk);
  wire::Frame reply;
  ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  EXPECT_EQ(reply.response.request_id, 77u);
  EXPECT_EQ(reply.response.value_fingerprint, OracleVfp(2));
}

TEST_F(ServerTest, GenerousRelativeDeadlineCompletesDespiteTransitDelay) {
  // The wire deadline is relative to SERVER admission: a client-side pause
  // between encoding and sending must not erode it (absolute semantics
  // would make this flaky; relative semantics make it a non-event).
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::RequestFrame rf = BfsRequest(0);
  rf.deadline_rel_ms = 60000.0;
  std::vector<uint8_t> bytes;
  wire::EncodeRequest(rf, &bytes);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // "transit"
  ASSERT_EQ(cli.SendRaw(bytes.data(), bytes.size(), &err), ClientStatus::kOk);
  wire::Frame reply;
  ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  EXPECT_EQ(reply.response.value_fingerprint, OracleVfp(0));
}

TEST_F(ServerTest, ServerStatsLedgerAddsUp) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::Frame reply;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(cli.Call(BfsRequest(static_cast<VertexId>(i)), &reply, &err),
              ClientStatus::kOk);
  }
  wire::RequestFrame bad = BfsRequest(0);
  bad.kind = 200;
  ASSERT_EQ(cli.Call(bad, &reply, &err), ClientStatus::kOk);
  const ServerStats s = server_->stats();
  EXPECT_GE(s.accepted, 1u);
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.responses, 3u);
  EXPECT_EQ(s.rejects, 1u);
  EXPECT_EQ(s.decode_errors, 0u);
  EXPECT_GT(s.bytes_rx, 0u);
  EXPECT_GT(s.bytes_tx, 0u);
}

// ---------------------------------------------------------------------------
// Transport resilience (PR 10): lifecycle timeouts, pipeline caps, drain.

// Open-fd count via /proc/self/fd — the leak gate for connection churn.
// Includes ".", ".." and the dirfd itself, consistently across calls.
int CountOpenFds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) {
    return -1;
  }
  int n = 0;
  while (::readdir(d) != nullptr) {
    ++n;
  }
  ::closedir(d);
  return n;
}

// Standalone graph + service + server with caller-chosen options, for the
// tests that need non-default lifecycle knobs.
struct Harness {
  std::unique_ptr<Graph> graph;
  std::unique_ptr<GraphService> service;
  std::unique_ptr<SocketServer> server;
  std::string uds;
  std::string error;
  bool ok = false;

  explicit Harness(ServerOptions opts, ServiceOptions so = {}) {
    static int counter = 0;
    graph = std::make_unique<Graph>(
        Graph::FromEdges(GenerateRmat(7, 8, 3), false));
    service = std::make_unique<GraphService>(*graph, so);
    uds = "/tmp/simdx_harness_" + std::to_string(::getpid()) + "_" +
          std::to_string(++counter) + ".sock";
    opts.uds_path = uds;
    server = std::make_unique<SocketServer>(*service, opts);
    ok = server->Start(&error);
  }
  ~Harness() {
    server->Stop();
    service->Shutdown();
  }
};

wire::RequestFrame HarnessBfsRequest(VertexId source, uint64_t id) {
  Query q;
  q.kind = QueryKind::kBfs;
  q.source = source;
  q.want_values = true;
  wire::RequestFrame f = ToRequestFrame(q);
  f.request_id = id;
  return f;
}

TEST_F(ServerTest, CloseMidWriteDoesNotKillServer) {
  // The SIGPIPE regression: clients that slam the connection shut while the
  // server owes them bytes. A reply written into the dead socket must be an
  // EPIPE errno under MSG_NOSIGNAL — a single raw write() here would kill
  // the whole process on the first iteration.
  std::string err;
  for (int i = 0; i < 30; ++i) {
    BlockingClient cli;
    ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
    std::vector<uint8_t> bytes;
    wire::EncodeRequest(BfsRequest(static_cast<VertexId>(i % 64)), &bytes);
    ASSERT_EQ(cli.SendRaw(bytes.data(), bytes.size(), &err), ClientStatus::kOk);
    cli.Close();  // gone before the reply can flush
  }
  for (int i = 0; i < 10; ++i) {
    // The between-header-and-body variant: leave the decoder mid-frame.
    BlockingClient cli;
    ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
    std::vector<uint8_t> bytes;
    wire::EncodeRequest(BfsRequest(0), &bytes);
    ASSERT_EQ(cli.SendRaw(bytes.data(), 10, &err), ClientStatus::kOk);
    cli.Close();
  }
  // The process survived; the server still answers.
  BlockingClient cli;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::Frame reply;
  ASSERT_EQ(cli.Call(BfsRequest(1), &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  EXPECT_EQ(reply.response.value_fingerprint, OracleVfp(1));
}

TEST_F(ServerTest, RecvTimeoutOnSilentServerIsTyped) {
  // The unbounded-ReadFrame fix: a server that legitimately never replies
  // (here: we sent half a frame, so it is WAITING, correctly) must cost the
  // client its recv budget, not forever.
  ClientTimeouts t;
  t.recv_ms = 150.0;
  BlockingClient cli(t);
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  std::vector<uint8_t> bytes;
  wire::EncodeRequest(BfsRequest(0), &bytes);
  ASSERT_EQ(cli.SendRaw(bytes.data(), 10, &err), ClientStatus::kOk);
  const auto t0 = std::chrono::steady_clock::now();
  wire::Frame reply;
  EXPECT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kTimedOut);
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
  EXPECT_GE(elapsed_ms, 100.0);
  EXPECT_LT(elapsed_ms, 5000.0);
}

TEST_F(ServerTest, FdChurnSoakReturnsToBaseline) {
  std::string err;
  {
    // Warm-up: first query initializes lazy process state (thread pool,
    // arenas) whose fds must not count against the churn.
    BlockingClient cli;
    ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
    wire::Frame reply;
    ASSERT_EQ(cli.Call(BfsRequest(0), &reply, &err), ClientStatus::kOk);
  }
  // Let the server retire the warm-up connection before the baseline.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  const int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);
  for (int i = 0; i < 300; ++i) {
    BlockingClient cli;
    ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
    wire::Frame reply;
    ASSERT_EQ(cli.Call(BfsRequest(static_cast<VertexId>(i % 128)), &reply,
                       &err),
              ClientStatus::kOk)
        << "churn " << i << ": " << err;
    cli.Close();
  }
  // Server-side closes trail the client by a poll cycle; wait them out.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (CountOpenFds() > baseline &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_LE(CountOpenFds(), baseline);
}

TEST(ServerLifecycleTest, ConnectionSlotsRecycleAfterOverflow) {
  ServerOptions opts;
  opts.max_connections = 2;
  Harness h(opts);
  ASSERT_TRUE(h.ok) << h.error;
  std::string err;
  BlockingClient a;
  BlockingClient b;
  ASSERT_EQ(a.ConnectUds(h.uds, &err), ClientStatus::kOk);
  ASSERT_EQ(b.ConnectUds(h.uds, &err), ClientStatus::kOk);
  wire::Frame reply;
  // Calls force both connections through accept before the overflow probe.
  ASSERT_EQ(a.Call(HarnessBfsRequest(0, 1), &reply, &err), ClientStatus::kOk);
  ASSERT_EQ(b.Call(HarnessBfsRequest(1, 2), &reply, &err), ClientStatus::kOk);

  // Third connection: connect() lands in the backlog, then the dispatch
  // loop closes it at the cap — the client's next read sees the EOF.
  BlockingClient c;
  ClientTimeouts t;
  t.recv_ms = 3000.0;
  c.set_timeouts(t);
  ASSERT_EQ(c.ConnectUds(h.uds, &err), ClientStatus::kOk);
  const ClientStatus over = c.Call(HarnessBfsRequest(2, 3), &reply, &err);
  // EPIPE on the send or EOF on the read, depending on who raced whom —
  // either way a typed transport failure, never a hang.
  EXPECT_TRUE(over == ClientStatus::kRecvFailed ||
              over == ClientStatus::kSendFailed)
      << ToString(over);

  // Freeing a slot lets a NEW connection in (the loop must notice the close
  // and recycle — a leaked slot would refuse forever).
  a.Close();
  bool recycled = false;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!recycled && std::chrono::steady_clock::now() < deadline) {
    BlockingClient d;
    d.set_timeouts(t);
    if (d.ConnectUds(h.uds, &err) == ClientStatus::kOk &&
        d.Call(HarnessBfsRequest(3, 4), &reply, &err) == ClientStatus::kOk &&
        reply.type == wire::MsgType::kResponse) {
      recycled = true;
    }
    if (!recycled) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(recycled);
  const ServerStats s = h.server->stats();
  EXPECT_GE(s.overflow_closed, 1u);
  EXPECT_GE(s.accepted, 3u);  // a, b, and the recycled d (c never got a slot)
  EXPECT_GE(s.closed, 1u);    // at least a's retirement
}

TEST(ServerLifecycleTest, PipelineCapRejectsTyped) {
  ServiceOptions so;
  so.start_paused = true;  // admitted queries queue; nothing resolves yet
  ServerOptions opts;
  opts.max_pipeline = 2;
  Harness h(opts, so);
  ASSERT_TRUE(h.ok) << h.error;
  std::string err;
  ClientTimeouts t;
  t.recv_ms = 10000.0;
  BlockingClient cli(t);
  ASSERT_EQ(cli.ConnectUds(h.uds, &err), ClientStatus::kOk);
  for (uint64_t id = 1; id <= 3; ++id) {
    std::vector<uint8_t> bytes;
    wire::EncodeRequest(HarnessBfsRequest(static_cast<VertexId>(id), id),
                        &bytes);
    ASSERT_EQ(cli.SendRaw(bytes.data(), bytes.size(), &err),
              ClientStatus::kOk);
  }
  // With two requests parked in the paused service, the third must bounce
  // off the per-connection cap immediately — a typed answer, not a queue.
  wire::Frame reply;
  ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kReject);
  EXPECT_EQ(reply.reject.request_id, 3u);
  EXPECT_EQ(reply.reject.code,
            static_cast<uint8_t>(wire::RejectCode::kPipelineFull));
  h.service->Resume();
  uint64_t got = 0;
  for (int i = 0; i < 2; ++i) {
    ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
    ASSERT_EQ(reply.type, wire::MsgType::kResponse);
    got |= uint64_t{1} << reply.response.request_id;
  }
  EXPECT_EQ(got, (uint64_t{1} << 1) | (uint64_t{1} << 2));
  EXPECT_EQ(h.server->stats().pipeline_rejects, 1u);
}

TEST(ServerLifecycleTest, SlowLorisPartialFrameGetsTimedOutReject) {
  ServerOptions opts;
  opts.header_timeout_ms = 100.0;
  Harness h(opts);
  ASSERT_TRUE(h.ok) << h.error;
  std::string err;
  ClientTimeouts t;
  t.recv_ms = 5000.0;
  BlockingClient cli(t);
  ASSERT_EQ(cli.ConnectUds(h.uds, &err), ClientStatus::kOk);
  std::vector<uint8_t> bytes;
  wire::EncodeRequest(HarnessBfsRequest(0, 1), &bytes);
  ASSERT_EQ(cli.SendRaw(bytes.data(), 6, &err), ClientStatus::kOk);
  // The server must answer the stall itself: a typed kTimedOut reject, then
  // the close — not an open-ended wait for bytes that never come.
  wire::Frame reply;
  ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kReject);
  EXPECT_EQ(reply.reject.code,
            static_cast<uint8_t>(wire::RejectCode::kTimedOut));
  EXPECT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kRecvFailed);
  EXPECT_EQ(h.server->stats().header_timeout_closed, 1u);
}

TEST(ServerLifecycleTest, IdleConnectionsAreReaped) {
  ServerOptions opts;
  opts.idle_timeout_ms = 100.0;
  Harness h(opts);
  ASSERT_TRUE(h.ok) << h.error;
  std::string err;
  ClientTimeouts t;
  t.recv_ms = 5000.0;
  BlockingClient cli(t);
  ASSERT_EQ(cli.ConnectUds(h.uds, &err), ClientStatus::kOk);
  // Say nothing, owe nothing: the reap is a plain close (EOF), no reject —
  // there is no request to answer.
  wire::Frame reply;
  EXPECT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kRecvFailed);
  EXPECT_EQ(h.server->stats().idle_closed, 1u);
}

TEST(ServerLifecycleTest, SlowReaderOverOutbufCapIsClosed) {
  ServerOptions opts;
  opts.sndbuf_bytes = 4096;      // shrink the kernel's slack
  opts.max_outbuf_bytes = 8192;  // user-space backlog cap
  opts.write_stall_timeout_ms = 200.0;
  Harness h(opts);
  ASSERT_TRUE(h.ok) << h.error;
  std::string err;
  BlockingClient cli;
  ASSERT_EQ(cli.ConnectUds(h.uds, &err), ClientStatus::kOk);
  // 64 want_values requests, never reading a byte back: ~36 KB of replies
  // pile up behind a 4 KB kernel buffer, blow the 8 KB cap, and the stall
  // clock runs out. Read-side flow control means the server stops taking
  // new requests from us first; the axe falls 200 ms later.
  for (uint64_t id = 1; id <= 64; ++id) {
    std::vector<uint8_t> bytes;
    wire::EncodeRequest(
        HarnessBfsRequest(static_cast<VertexId>(id % 128), id), &bytes);
    ASSERT_EQ(cli.SendRaw(bytes.data(), bytes.size(), &err),
              ClientStatus::kOk);
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (h.server->stats().slow_reader_closed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_GE(h.server->stats().slow_reader_closed, 1u);
}

TEST(ServerDrainTest, DrainAnswersPendingThenCloses) {
  ServiceOptions so;
  so.start_paused = true;
  Harness h({}, so);
  ASSERT_TRUE(h.ok) << h.error;
  std::string err;
  ClientTimeouts t;
  t.recv_ms = 15000.0;
  BlockingClient cli(t);
  ASSERT_EQ(cli.ConnectUds(h.uds, &err), ClientStatus::kOk);
  for (uint64_t id = 1; id <= 2; ++id) {
    std::vector<uint8_t> bytes;
    wire::EncodeRequest(HarnessBfsRequest(static_cast<VertexId>(id), id),
                        &bytes);
    ASSERT_EQ(cli.SendRaw(bytes.data(), bytes.size(), &err),
              ClientStatus::kOk);
  }
  // Both admitted (and parked — the service is paused) before Drain starts.
  auto wait_requests = [&](uint64_t n) {
    const auto dl = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (h.server->stats().requests < n &&
           std::chrono::steady_clock::now() < dl) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };
  wait_requests(2);
  ASSERT_EQ(h.server->stats().requests, 2u);

  bool clean = false;
  std::thread drainer([&] { clean = h.server->Drain(15000.0); });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  // A request arriving MID-drain is answered with the typed stopping
  // reject — the connection is still being read precisely for this.
  {
    std::vector<uint8_t> bytes;
    wire::EncodeRequest(HarnessBfsRequest(3, 9), &bytes);
    ASSERT_EQ(cli.SendRaw(bytes.data(), bytes.size(), &err),
              ClientStatus::kOk);
  }
  h.service->Resume();  // now the two parked queries run and resolve

  int responses = 0;
  int stopping = 0;
  for (int i = 0; i < 3; ++i) {
    wire::Frame reply;
    ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
    if (reply.type == wire::MsgType::kResponse) {
      ++responses;
    } else if (reply.type == wire::MsgType::kReject &&
               reply.reject.code ==
                   static_cast<uint8_t>(wire::RejectCode::kServerStopping)) {
      EXPECT_EQ(reply.reject.request_id, 9u);
      ++stopping;
    }
  }
  EXPECT_EQ(responses, 2);
  EXPECT_EQ(stopping, 1);
  // Everything owed was delivered; the server closes the connection.
  wire::Frame reply;
  EXPECT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kRecvFailed);
  drainer.join();
  EXPECT_TRUE(clean);
  const ServerStats s = h.server->stats();
  EXPECT_EQ(s.drained_replies, 2u);
  EXPECT_EQ(s.drain_dropped, 0u);
}

TEST(ServerDrainTest, DrainDeadlineDropsStuckReplies) {
  ServiceOptions so;
  so.start_paused = true;  // never resumed: the reply can never resolve
  Harness h({}, so);
  ASSERT_TRUE(h.ok) << h.error;
  std::string err;
  BlockingClient cli;
  ASSERT_EQ(cli.ConnectUds(h.uds, &err), ClientStatus::kOk);
  std::vector<uint8_t> bytes;
  wire::EncodeRequest(HarnessBfsRequest(1, 1), &bytes);
  ASSERT_EQ(cli.SendRaw(bytes.data(), bytes.size(), &err), ClientStatus::kOk);
  const auto dl = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (h.server->stats().requests < 1 &&
         std::chrono::steady_clock::now() < dl) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(h.server->stats().requests, 1u);
  const auto t0 = std::chrono::steady_clock::now();
  const bool clean = h.server->Drain(300.0);
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - t0)
                                .count();
  EXPECT_FALSE(clean);
  EXPECT_GE(elapsed_ms, 250.0);
  EXPECT_LT(elapsed_ms, 5000.0);  // bounded: the deadline cuts it loose
  EXPECT_EQ(h.server->stats().drain_dropped, 1u);
}

// Direct (in-process) admission must enforce the same kind-byte bound guard
// the wire path relies on — the service-side half of the sweep.
TEST(AdmissionKindGuardTest, OutOfRangeKindIsRejectedInvalid) {
  const Graph g = Graph::FromEdges(GenerateRmat(6, 8, 3), false);
  ServiceOptions so;
  so.workers = 1;
  GraphService svc(g, so);
  Query q;
  q.kind = static_cast<QueryKind>(200);
  q.source = 0;
  auto ticket = svc.Submit(q);
  EXPECT_EQ(ticket.verdict, AdmissionVerdict::kRejectedInvalid);
  Query sentinel;
  sentinel.kind = QueryKind::kCount;  // the sentinel itself is not a kind
  auto t2 = svc.Submit(sentinel);
  EXPECT_EQ(t2.verdict, AdmissionVerdict::kRejectedInvalid);
  svc.Shutdown();
}

}  // namespace
}  // namespace simdx::service
