// Socket dispatch loop contract: answers over UDS/TCP are bit-equal to
// direct Submit, hostile bytes elicit typed rejects (fatal ones close the
// stream, recoverable ones don't), torn writes reassemble, the admission
// verdict taxonomy crosses the wire intact, and the deadline that crosses is
// RELATIVE — the TSan CI job runs this test over the dispatch loop's
// thread + the service workers + concurrent client threads.
#include "service/server.h"

#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "algos/algos.h"
#include "core/fingerprint.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "service/client.h"

namespace simdx::service {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_unique<Graph>(
        Graph::FromEdges(GenerateRmat(7, 8, 3), false));
    ServiceOptions so;
    so.workers = 2;
    service_ = std::make_unique<GraphService>(*graph_, so);
    ServerOptions opts;
    opts.uds_path = "/tmp/simdx_server_test_" + std::to_string(::getpid()) +
                    "_" + std::to_string(++instance_) + ".sock";
    opts.tcp = true;  // ephemeral loopback port
    server_ = std::make_unique<SocketServer>(*service_, opts);
    std::string err;
    ASSERT_TRUE(server_->Start(&err)) << err;
  }

  void TearDown() override {
    server_->Stop();
    service_->Shutdown();
  }

  uint64_t OracleVfp(VertexId source) {
    ServiceOptions so;
    const auto r = RunBfs(*graph_, source, so.device, so.engine);
    return ValueBytesFingerprint(r.values.data(),
                                 r.values.size() * sizeof(uint32_t));
  }

  static wire::RequestFrame BfsRequest(VertexId source) {
    Query q;
    q.kind = QueryKind::kBfs;
    q.source = source;
    q.want_values = true;
    return ToRequestFrame(q);
  }

  static int instance_;
  std::unique_ptr<Graph> graph_;
  std::unique_ptr<GraphService> service_;
  std::unique_ptr<SocketServer> server_;
};

int ServerTest::instance_ = 0;

TEST_F(ServerTest, UdsAnswerIsBitEqualToDirectSubmit) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk)
      << err;
  wire::Frame reply;
  ASSERT_EQ(cli.Call(BfsRequest(0), &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  const uint64_t oracle = OracleVfp(0);
  EXPECT_EQ(reply.response.value_fingerprint, oracle);
  EXPECT_EQ(ValueBytesFingerprint(reply.response.value_bytes.data(),
                                  reply.response.value_bytes.size()),
            oracle);
}

TEST_F(ServerTest, TcpAnswerMatchesToo) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectTcp("127.0.0.1", server_->tcp_port(), &err),
            ClientStatus::kOk)
      << err;
  wire::Frame reply;
  ASSERT_EQ(cli.Call(BfsRequest(1), &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  EXPECT_EQ(reply.response.value_fingerprint, OracleVfp(1));
}

TEST_F(ServerTest, ConcurrentClientsAllGetTheirOwnAnswers) {
  constexpr int kClients = 4;
  constexpr int kPerClient = 8;
  std::vector<uint64_t> oracle;
  for (int s = 0; s < kClients * kPerClient; ++s) {
    oracle.push_back(OracleVfp(static_cast<VertexId>(s)));
  }
  std::vector<std::thread> threads;
  std::vector<int> failures(kClients, 0);
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      BlockingClient cli;
      std::string err;
      if (cli.ConnectUds(server_->uds_path(), &err) != ClientStatus::kOk) {
        failures[c] = kPerClient;
        return;
      }
      for (int i = 0; i < kPerClient; ++i) {
        const int s = c * kPerClient + i;
        wire::Frame reply;
        if (cli.Call(BfsRequest(static_cast<VertexId>(s)), &reply, &err) !=
                ClientStatus::kOk ||
            reply.type != wire::MsgType::kResponse ||
            reply.response.value_fingerprint != oracle[s]) {
          ++failures[c];
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(failures[c], 0) << "client " << c;
  }
}

TEST_F(ServerTest, RawGarbageGetsBadFrameRejectThenClose) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";  // wrong protocol entirely
  ASSERT_EQ(cli.SendRaw(garbage, sizeof(garbage) - 1, &err), ClientStatus::kOk);
  wire::Frame reply;
  ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kReject);
  EXPECT_EQ(reply.reject.code,
            static_cast<uint8_t>(wire::RejectCode::kBadFrame));
  // Frame sync is gone: the server closes after flushing the reject.
  EXPECT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kRecvFailed);
}

TEST_F(ServerTest, OutOfRangeKindByteIsInvalidQueryNotACrash) {
  // The codec carries the hostile byte intact; ADMISSION refuses it before
  // any per-kind array is indexed (the kind-byte bound-guard fix). The
  // connection survives — the frame itself was well-formed.
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::RequestFrame rf = BfsRequest(0);
  rf.kind = 200;
  wire::Frame reply;
  ASSERT_EQ(cli.Call(rf, &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kReject);
  EXPECT_EQ(reply.reject.code,
            static_cast<uint8_t>(wire::RejectCode::kInvalidQuery));
  ASSERT_EQ(cli.Call(BfsRequest(0), &reply, &err), ClientStatus::kOk);
  EXPECT_EQ(reply.type, wire::MsgType::kResponse);
}

TEST_F(ServerTest, InvalidSourceMapsToInvalidQueryReject) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::RequestFrame rf = BfsRequest(0);
  rf.source = 0xFFFFFFFFu;  // far beyond the loaded graph
  wire::Frame reply;
  ASSERT_EQ(cli.Call(rf, &reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kReject);
  EXPECT_EQ(reply.reject.code,
            static_cast<uint8_t>(wire::RejectCode::kInvalidQuery));
}

TEST_F(ServerTest, TornWriteReassemblesIntoANormalAnswer) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::RequestFrame rf = BfsRequest(2);
  rf.request_id = 77;
  std::vector<uint8_t> bytes;
  wire::EncodeRequest(rf, &bytes);
  ASSERT_EQ(cli.SendRaw(bytes.data(), 9, &err), ClientStatus::kOk);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(cli.SendRaw(bytes.data() + 9, bytes.size() - 9, &err),
            ClientStatus::kOk);
  wire::Frame reply;
  ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  EXPECT_EQ(reply.response.request_id, 77u);
  EXPECT_EQ(reply.response.value_fingerprint, OracleVfp(2));
}

TEST_F(ServerTest, GenerousRelativeDeadlineCompletesDespiteTransitDelay) {
  // The wire deadline is relative to SERVER admission: a client-side pause
  // between encoding and sending must not erode it (absolute semantics
  // would make this flaky; relative semantics make it a non-event).
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::RequestFrame rf = BfsRequest(0);
  rf.deadline_rel_ms = 60000.0;
  std::vector<uint8_t> bytes;
  wire::EncodeRequest(rf, &bytes);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // "transit"
  ASSERT_EQ(cli.SendRaw(bytes.data(), bytes.size(), &err), ClientStatus::kOk);
  wire::Frame reply;
  ASSERT_EQ(cli.ReadFrame(&reply, &err), ClientStatus::kOk) << err;
  ASSERT_EQ(reply.type, wire::MsgType::kResponse);
  EXPECT_EQ(reply.response.value_fingerprint, OracleVfp(0));
}

TEST_F(ServerTest, ServerStatsLedgerAddsUp) {
  BlockingClient cli;
  std::string err;
  ASSERT_EQ(cli.ConnectUds(server_->uds_path(), &err), ClientStatus::kOk);
  wire::Frame reply;
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(cli.Call(BfsRequest(static_cast<VertexId>(i)), &reply, &err),
              ClientStatus::kOk);
  }
  wire::RequestFrame bad = BfsRequest(0);
  bad.kind = 200;
  ASSERT_EQ(cli.Call(bad, &reply, &err), ClientStatus::kOk);
  const ServerStats s = server_->stats();
  EXPECT_GE(s.accepted, 1u);
  EXPECT_EQ(s.requests, 4u);
  EXPECT_EQ(s.responses, 3u);
  EXPECT_EQ(s.rejects, 1u);
  EXPECT_EQ(s.decode_errors, 0u);
  EXPECT_GT(s.bytes_rx, 0u);
  EXPECT_GT(s.bytes_tx, 0u);
}

// Direct (in-process) admission must enforce the same kind-byte bound guard
// the wire path relies on — the service-side half of the sweep.
TEST(AdmissionKindGuardTest, OutOfRangeKindIsRejectedInvalid) {
  const Graph g = Graph::FromEdges(GenerateRmat(6, 8, 3), false);
  ServiceOptions so;
  so.workers = 1;
  GraphService svc(g, so);
  Query q;
  q.kind = static_cast<QueryKind>(200);
  q.source = 0;
  auto ticket = svc.Submit(q);
  EXPECT_EQ(ticket.verdict, AdmissionVerdict::kRejectedInvalid);
  Query sentinel;
  sentinel.kind = QueryKind::kCount;  // the sentinel itself is not a kind
  auto t2 = svc.Submit(sentinel);
  EXPECT_EQ(t2.verdict, AdmissionVerdict::kRejectedInvalid);
  svc.Shutdown();
}

}  // namespace
}  // namespace simdx::service
