#include "baselines/gunrock_like.h"

#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "simt/device.h"

namespace simdx {
namespace {

TEST(GunrockLikeTest, BfsMatchesOracle) {
  const Graph g = Graph::FromEdges(GenerateRmat(9, 8, 4), false);
  BfsProgram program;
  const auto result = RunGunrockLike(g, program, MakeK40());
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.values, CpuBfsLevels(g, 0));
}

TEST(GunrockLikeTest, SsspMatchesOracle) {
  const Graph g = Graph::FromEdges(GenerateGridRoad(12, 12, 5), false);
  SsspProgram program;
  const auto result = RunGunrockLike(g, program, MakeK40());
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.values, CpuDijkstra(g, 0));
}

TEST(GunrockLikeTest, ChargesAtomics) {
  const Graph g = Graph::FromEdges(GenerateRmat(9, 8, 4), false);
  BfsProgram program;
  const auto result = RunGunrockLike(g, program, MakeK40());
  EXPECT_GT(result.stats.counters.atomic_ops, 0u);
  EXPECT_GT(result.stats.counters.atomic_conflicts, 0u)
      << "skewed graphs hammer the same destinations";
}

TEST(GunrockLikeTest, PushOnlyExecution) {
  const Graph g = LoadPreset("OR");
  BfsProgram program;
  const auto result = RunGunrockLike(g, program, MakeK40());
  EXPECT_EQ(result.stats.direction_pattern.find('P'), std::string::npos);
}

TEST(GunrockLikeTest, SlowerThanSimdxOnSkewedGraph) {
  const Graph g = LoadPreset("KR");
  BfsProgram program;
  const auto gunrock = RunGunrockLike(g, program, MakeK40());
  const auto simdx = RunBfs(g, 0, MakeK40(), EngineOptions{});
  ASSERT_TRUE(gunrock.stats.ok());
  ASSERT_TRUE(simdx.stats.ok());
  EXPECT_EQ(gunrock.values, simdx.values);
  EXPECT_GT(gunrock.stats.time.ms, simdx.stats.time.ms);
}

TEST(GunrockLikeTest, BatchFilterFootprintCausesOomOnTightBudget) {
  const Graph g = LoadPreset("FB");
  BfsProgram program;
  EngineOptions o = GunrockLikeOptions();
  // A budget the CSR fits in but the 2|E| active-edge list does not.
  o.memory_budget_bytes = g.CsrFootprintBytes() + (1u << 22);
  Engine<BfsProgram> engine(g, MakeK40(), o);
  const auto result = engine.Run(program);
  EXPECT_TRUE(result.stats.oom);

  EngineOptions simdx_opts;
  simdx_opts.memory_budget_bytes = o.memory_budget_bytes;
  const auto simdx = Engine<BfsProgram>(g, MakeK40(), simdx_opts).Run(program);
  EXPECT_FALSE(simdx.stats.oom) << "SIMD-X fits where the batch filter cannot";
}

TEST(GunrockLikeTest, ManyLaunchesPerRun) {
  const Graph g = Graph::FromEdges(GenerateGridRoad(40, 10, 2), false);
  BfsProgram program;
  const auto result = RunGunrockLike(g, program, MakeK40());
  EXPECT_GE(result.stats.counters.kernel_launches, result.stats.iterations);
}

}  // namespace
}  // namespace simdx
