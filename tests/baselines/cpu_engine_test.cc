#include "baselines/cpu_engine.h"

#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "simt/device.h"

namespace simdx {
namespace {

TEST(CpuEngineTest, LigraLikeBfsMatchesOracle) {
  const Graph g = Graph::FromEdges(GenerateRmat(9, 8, 2), false);
  BfsProgram program;
  const auto result = RunCpuFrontier(g, program, LigraLikeOptions());
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.values, CpuBfsLevels(g, 0));
}

TEST(CpuEngineTest, GaloisLikeSsspMatchesOracle) {
  const Graph g = Graph::FromEdges(GenerateGridRoad(15, 15, 4), false);
  SsspProgram program;
  const auto result = RunCpuFrontier(g, program, GaloisLikeOptions());
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.values, CpuDijkstra(g, 0));
}

TEST(CpuEngineTest, LigraUsesPullOnDenseFrontier) {
  const Graph g = LoadPreset("OR");
  BfsProgram program;
  const auto result = RunCpuFrontier(g, program, LigraLikeOptions());
  EXPECT_NE(result.stats.direction_pattern.find('P'), std::string::npos);
}

TEST(CpuEngineTest, GaloisNeverPulls) {
  const Graph g = LoadPreset("OR");
  BfsProgram program;
  const auto result = RunCpuFrontier(g, program, GaloisLikeOptions());
  EXPECT_EQ(result.stats.direction_pattern.find('P'), std::string::npos);
}

TEST(CpuEngineTest, AsynchronousSyncCostIsLower) {
  // Same work, different sync models: on a high-iteration graph the
  // barrier-per-iteration engine pays more (Galois's edge on road graphs).
  const Graph g = LoadPreset("RC");
  SsspProgram program;
  const auto ligra = RunCpuFrontier(g, program, LigraLikeOptions());
  const auto galois = RunCpuFrontier(g, program, GaloisLikeOptions());
  ASSERT_TRUE(ligra.stats.ok());
  ASSERT_TRUE(galois.stats.ok());
  EXPECT_EQ(ligra.values, galois.values);
}

TEST(CpuEngineTest, GpuEngineBeatsCpuOnBigSocialGraph) {
  // Table 4's headline: SIMD-X is a small multiple faster than the CPU
  // frameworks on the social graphs.
  const Graph g = LoadPreset("FB");
  BfsProgram program;
  const auto cpu = RunCpuFrontier(g, program, LigraLikeOptions());
  const auto gpu = RunBfs(g, 0, MakeK40(), EngineOptions{});
  ASSERT_TRUE(cpu.stats.ok());
  ASSERT_TRUE(gpu.stats.ok());
  EXPECT_EQ(cpu.values, gpu.values);
  EXPECT_GT(cpu.stats.time.ms, gpu.stats.time.ms);
}

TEST(CpuEngineTest, PageRankMatchesOracle) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 7), false);
  PageRankProgram program;
  program.graph = &g;
  program.epsilon = 1e-12;
  CpuEngineOptions o = LigraLikeOptions();
  const auto result = RunCpuFrontier(g, program, o);
  ASSERT_TRUE(result.stats.ok());
  const auto oracle = CpuPageRank(g);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_NEAR(result.values[v].rank, oracle[v], 1e-7);
  }
}

}  // namespace
}  // namespace simdx
