#include "baselines/cusha_like.h"

#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "simt/device.h"

namespace simdx {
namespace {

TEST(CushaLikeTest, BfsMatchesOracle) {
  const Graph g = Graph::FromEdges(GenerateRmat(9, 8, 6), false);
  BfsProgram program;
  const auto result = RunCushaLike(g, program, MakeK40());
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.values, CpuBfsLevels(g, 0));
}

TEST(CushaLikeTest, SsspMatchesOracle) {
  const Graph g = Graph::FromEdges(GenerateGridRoad(12, 12, 8), false);
  SsspProgram program;
  const auto result = RunCushaLike(g, program, MakeK40());
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.values, CpuDijkstra(g, 0));
}

TEST(CushaLikeTest, KCoreMatchesOracle) {
  const Graph g = Graph::FromEdges(GenerateRmat(9, 10, 2), false);
  KCoreProgram program;
  program.graph = &g;
  program.k = 8;
  const auto result = RunCushaLike(g, program, MakeK40());
  ASSERT_TRUE(result.stats.ok());
  const auto oracle = CpuKCoreRemoved(g, 8);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(result.values[v].removed, oracle[v]) << v;
  }
}

TEST(CushaLikeTest, ProcessesFullEdgeSetEveryIteration) {
  const Graph g = Graph::FromEdges(GenerateChain(30), false);
  BfsProgram program;
  const auto result = RunCushaLike(g, program, MakeK40());
  // No task management: every iteration sweeps |E| edges.
  EXPECT_EQ(result.stats.total_edges_processed,
            static_cast<uint64_t>(result.stats.iterations) * g.edge_count());
}

TEST(CushaLikeTest, EdgeListFormatNeedsMoreMemoryThanCsr) {
  const Graph g = LoadPreset("FB");
  BfsProgram program;
  CushaLikeOptions o;
  o.memory_budget_bytes = g.CsrFootprintBytes() + (1u << 22);
  const auto result = RunCushaLike(g, program, MakeK40(), o);
  EXPECT_TRUE(result.stats.oom)
      << "the shard format (2x edge list) exceeds a CSR-sized budget";
}

TEST(CushaLikeTest, PathologicalOnHighDiameterGraphs) {
  // Table 4's ER blowup (480x at paper scale) in miniature: no task
  // management means iterations x full-|E| sweeps, against SIMD-X's
  // frontier-proportional work. At 1/1000 graph scale the per-iteration
  // launch floor compresses the gap; direction and a solid multiple must
  // survive (EXPERIMENTS.md discusses the scale dependence).
  const Graph g = LoadPreset("ER");
  SsspProgram program;
  const auto cusha = RunCushaLike(g, program, MakeK40());
  const auto simdx = RunSssp(g, 0, MakeK40(), EngineOptions{});
  ASSERT_TRUE(cusha.stats.ok());
  ASSERT_TRUE(simdx.stats.ok());
  EXPECT_EQ(cusha.values, simdx.values);
  EXPECT_GT(cusha.stats.time.ms, 4.0 * simdx.stats.time.ms);
}

TEST(CushaLikeTest, BpRunsFixedRounds) {
  const Graph g = Graph::FromEdges(GenerateRmat(7, 6, 3), false);
  BpProgram program;
  program.graph = &g;
  program.max_rounds = 6;
  const auto result = RunCushaLike(g, program, MakeK40());
  EXPECT_EQ(result.stats.iterations, 6u);
  const auto oracle = CpuBp(g, 6);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_NEAR(result.values[v], oracle[v], 1e-9);
  }
}

}  // namespace
}  // namespace simdx
