#include "baselines/cpu_reference.h"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.h"

namespace simdx {
namespace {

TEST(CpuReferenceTest, BfsChainLevels) {
  const Graph g = Graph::FromEdges(GenerateChain(6), false);
  const auto levels = CpuBfsLevels(g, 0);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(levels[v], v);
  }
}

TEST(CpuReferenceTest, DijkstraAgreesWithDeltaStepping) {
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    const Graph g = Graph::FromEdges(GenerateRmat(9, 8, seed), false);
    const auto dij = CpuDijkstra(g, 0);
    for (uint32_t delta : {1u, 4u, 16u, 1024u}) {
      EXPECT_EQ(CpuDeltaStepping(g, 0, delta), dij)
          << "seed " << seed << " delta " << delta;
    }
  }
}

TEST(CpuReferenceTest, DijkstraFigure1) {
  const Graph g = Graph::FromEdges(PaperFigure1Graph(), false);
  const std::vector<uint32_t> expected = {0, 4, 5, 1, 3, 4, 6, 7, 9};
  EXPECT_EQ(CpuDijkstra(g, 0), expected);
  EXPECT_EQ(CpuDeltaStepping(g, 0), expected);
}

TEST(CpuReferenceTest, PageRankSumsToAboutOne) {
  // Grid road: undirected and free of isolated vertices, so no dangling
  // mass is dropped and the ranks must sum to 1.
  const Graph g = Graph::FromEdges(GenerateGridRoad(20, 20, 3), false);
  const auto rank = CpuPageRank(g);
  const double sum = std::accumulate(rank.begin(), rank.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST(CpuReferenceTest, PageRankUniformOnRegularGraph) {
  const Graph g = Graph::FromEdges(GenerateComplete(12), false);
  const auto rank = CpuPageRank(g);
  for (double r : rank) {
    EXPECT_NEAR(r, 1.0 / 12.0, 1e-9);
  }
}

TEST(CpuReferenceTest, KCorePeelsChain) {
  const Graph g = Graph::FromEdges(GenerateChain(10), false);
  const auto removed2 = CpuKCoreRemoved(g, 2);
  EXPECT_TRUE(std::all_of(removed2.begin(), removed2.end(),
                          [](bool r) { return r; }));
  const auto removed1 = CpuKCoreRemoved(g, 1);
  EXPECT_TRUE(std::none_of(removed1.begin(), removed1.end(),
                           [](bool r) { return r; }));
}

TEST(CpuReferenceTest, KCoreKeepsClique) {
  // K6 embedded in a path of pendants: the clique survives k=5.
  EdgeList list = GenerateComplete(6);
  list.Add(0, 6);
  list.Add(6, 7);
  const Graph g = Graph::FromEdges(list, false);
  const auto removed = CpuKCoreRemoved(g, 5);
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_FALSE(removed[v]);
  }
  EXPECT_TRUE(removed[6]);
  EXPECT_TRUE(removed[7]);
}

TEST(CpuReferenceTest, WccDirectedGraphIsWeak) {
  EdgeList list;
  list.Add(0, 1);  // only direction 0 -> 1
  list.Add(2, 1);
  const Graph g = Graph::FromEdges(list, true);
  const auto labels = CpuWccLabels(g);
  EXPECT_EQ(labels[0], labels[1]);
  EXPECT_EQ(labels[1], labels[2]) << "weak connectivity ignores direction";
}

TEST(CpuReferenceTest, SpmvIdentityLikeBehaviour) {
  EdgeList list;
  list.Add(0, 1, 2);
  list.Add(1, 2, 3);
  const Graph g = Graph::FromEdges(list, true);
  const auto y = CpuSpmv(g, {1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 30.0);
}

TEST(CpuReferenceTest, PushPageRankBitIdenticalToPull) {
  // The push oracle deposits in ascending-source order — exactly the order
  // of the pull oracle's sorted in-runs — so the vectors must match
  // BITWISE, not just approximately, at every thread count the shared pool
  // happens to use.
  for (uint64_t seed : {3ull, 11ull}) {
    const Graph g = Graph::FromEdges(GenerateRmat(11, 8, seed), true);
    EXPECT_EQ(CpuPageRankPush(g), CpuPageRank(g)) << "seed " << seed;
  }
}

TEST(CpuReferenceTest, PushSpmvBitIdenticalToPull) {
  const Graph g = Graph::FromEdges(GenerateRmat(11, 8, 21), true);
  std::vector<double> x(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    x[v] = 1.0 / (1.0 + v);
  }
  EXPECT_EQ(CpuSpmvPush(g, x), CpuSpmv(g, x));
}

TEST(CpuReferenceTest, PushSpmvSmallGraphExactValues) {
  EdgeList list;
  list.Add(0, 1, 2);
  list.Add(1, 2, 3);
  const Graph g = Graph::FromEdges(list, true);
  const auto y = CpuSpmvPush(g, {1.0, 10.0, 100.0});
  EXPECT_DOUBLE_EQ(y[0], 0.0);
  EXPECT_DOUBLE_EQ(y[1], 2.0);
  EXPECT_DOUBLE_EQ(y[2], 30.0);
}

TEST(CpuReferenceTest, BpZeroRoundsIsPrior) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  const auto beliefs = CpuBp(g, 0);
  EXPECT_NEAR(beliefs[0], 0.1 + 0.8 * ((0 * 2654435761u % 1000) / 1000.0), 1e-12);
}

}  // namespace
}  // namespace simdx
