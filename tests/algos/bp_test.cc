#include "algos/bp.h"

#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 32;
  return o;
}

TEST(BpTest, MatchesJacobiOracle) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 2), false);
  const auto result = RunBp(g, 10, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  const auto oracle = CpuBp(g, 10);
  ASSERT_EQ(result.values.size(), oracle.size());
  for (size_t v = 0; v < oracle.size(); ++v) {
    EXPECT_NEAR(result.values[v], oracle[v], 1e-9) << "vertex " << v;
  }
}

TEST(BpTest, RunsExactlyRequestedRounds) {
  const Graph g = Graph::FromEdges(GenerateGridRoad(10, 10, 1), false);
  const auto result = RunBp(g, 7, MakeK40(), TestOptions());
  EXPECT_EQ(result.stats.iterations, 7u);
}

TEST(BpTest, AllIterationsArePull) {
  const Graph g = Graph::FromEdges(GenerateRmat(7, 6, 4), false);
  const auto result = RunBp(g, 5, MakeK40(), TestOptions());
  for (char dir : result.stats.direction_pattern) {
    EXPECT_EQ(dir, 'P');
  }
}

TEST(BpTest, FrontierStaticAfterFirstIteration) {
  // Pattern: one real filter build (ballot: every vertex active) then '='
  // reuse — "BP ... need the ballot filter at exactly the first iteration".
  const Graph g = LoadPreset("PK");
  const auto result = RunBp(g, 5, MakeK40(), TestOptions());
  ASSERT_GE(result.stats.filter_pattern.size(), 2u);
  EXPECT_EQ(result.stats.filter_pattern.front(), 'B');
  for (size_t i = 1; i < result.stats.filter_pattern.size(); ++i) {
    EXPECT_EQ(result.stats.filter_pattern[i], '=');
  }
}

TEST(BpTest, BeliefsConvergeWithMoreRounds) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 5), false);
  const auto r20 = RunBp(g, 20, MakeK40(), TestOptions());
  const auto r21 = RunBp(g, 21, MakeK40(), TestOptions());
  double max_delta = 0.0;
  for (size_t v = 0; v < r20.values.size(); ++v) {
    max_delta = std::max(max_delta, std::abs(r20.values[v] - r21.values[v]));
  }
  EXPECT_LT(max_delta, 1e-4) << "damped messages must be contracting";
}

TEST(BpTest, IsolatedVertexKeepsPrior) {
  const Graph g = Graph::FromEdges(GenerateChain(3), false, /*vertex_count=*/5);
  const auto result = RunBp(g, 5, MakeK40(), TestOptions());
  BpProgram reference;
  reference.graph = &g;
  EXPECT_DOUBLE_EQ(result.values[4], reference.Prior(4));
}

}  // namespace
}  // namespace simdx
