#include "algos/pagerank.h"

#include <gtest/gtest.h>

#include <numeric>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 128;
  o.max_iterations = 20000;
  return o;
}

void ExpectRanksMatch(const std::vector<PageRankValue>& got,
                      const std::vector<double>& expected, double tol) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    EXPECT_NEAR(got[v].rank, expected[v], tol) << "vertex " << v;
  }
}

TEST(PageRankTest, MatchesPowerIterationOnSmallGraph) {
  const Graph g = Graph::FromEdges(GenerateComplete(8), false);
  const auto result = RunPageRank(g, MakeK40(), TestOptions(), 1e-12);
  ASSERT_TRUE(result.stats.ok());
  ExpectRanksMatch(result.values, CpuPageRank(g), 1e-8);
}

TEST(PageRankTest, CompleteGraphIsUniform) {
  const Graph g = Graph::FromEdges(GenerateComplete(10), false);
  const auto result = RunPageRank(g, MakeK40(), TestOptions(), 1e-12);
  for (const auto& value : result.values) {
    EXPECT_NEAR(value.rank, result.values[0].rank, 1e-10);
  }
}

TEST(PageRankTest, MatchesPowerIterationOnSkewedGraph) {
  const Graph g = Graph::FromEdges(GenerateRmat(9, 8, 3), false);
  const auto result = RunPageRank(g, MakeK40(), TestOptions(), 1e-12);
  ASSERT_TRUE(result.stats.ok());
  ExpectRanksMatch(result.values, CpuPageRank(g), 1e-7);
}

TEST(PageRankTest, DirectedGraphMatchesOracle) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 6, 9), true);
  const auto result = RunPageRank(g, MakeK40(), TestOptions(), 1e-12);
  ASSERT_TRUE(result.stats.ok());
  ExpectRanksMatch(result.values, CpuPageRank(g), 1e-7);
}

TEST(PageRankTest, StartsPullSwitchesToPush) {
  // Section 6: "we start PageRank with the pull model ... At the end of
  // PageRank, we switch to the push model".
  const Graph g = LoadPreset("PK");
  const auto result = RunPageRank(g, MakeK40(), TestOptions(), 1e-10);
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.stats.direction_pattern.front(), 'P');
  EXPECT_EQ(result.stats.direction_pattern.back(), 'p');
}

TEST(PageRankTest, HubOutranksLeavesOnStar) {
  const Graph g = Graph::FromEdges(GenerateStar(50), false);
  const auto result = RunPageRank(g, MakeK40(), TestOptions(), 1e-12);
  for (VertexId v = 1; v <= 50; ++v) {
    EXPECT_GT(result.values[0].rank, result.values[v].rank);
  }
}

TEST(PageRankTest, ResidualsDrainedAtConvergence) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 1), false);
  const double eps = 1e-10;
  const auto result = RunPageRank(g, MakeK40(), TestOptions(), eps);
  ASSERT_TRUE(result.stats.converged);
  for (const auto& value : result.values) {
    EXPECT_LE(value.residual, eps);
  }
}

}  // namespace
}  // namespace simdx
