// Bit-parallel multi-source BFS: the differential contract is per-lane
// BIT-EQUALITY — ExtractLaneLevels(state, i) must equal the single-source
// BfsProgram's value array for source i, for every lane, under every thread
// count and both stats contracts (per-record and pre-combined). On top of
// correctness, the batching economics are gated: one 64-source run must cost
// less than 2x the edge work of ONE full single-source traversal (vs ~64x
// for independent runs) — the property that makes service-side coalescing a
// throughput multiplier instead of a curiosity.
//
// NIGHTLY SCALING: like the integration sweeps, the randomized differential
// here reads SIMDX_SWEEP_SEEDS / SIMDX_SWEEP_SCALE / SIMDX_SWEEP_THREADS so
// the scheduled nightly workflow can widen the matrix without touching the
// seconds-scale defaults.
#include "algos/msbfs.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "algos/algos.h"
#include "core/fault.h"
#include "core/fingerprint.h"
#include "core/robust.h"
#include "graph/generators.h"
#include "simt/device.h"

namespace simdx {
namespace {

uint64_t EnvU64(const char* name, uint64_t fallback) {
  const char* s = std::getenv(name);
  if (s == nullptr || *s == '\0') {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s, &end, 10);
  return (end != nullptr && *end == '\0') ? static_cast<uint64_t>(v) : fallback;
}

std::vector<uint32_t> EnvThreads() {
  const char* s = std::getenv("SIMDX_SWEEP_THREADS");
  std::vector<uint32_t> out;
  if (s != nullptr && *s != '\0') {
    std::stringstream ss(s);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      const int v = std::atoi(tok.c_str());
      if (v >= 1) {
        out.push_back(static_cast<uint32_t>(v));
      }
    }
  }
  if (out.empty()) {
    out = {1, 3, 8};
  }
  return out;
}

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 64;
  return o;
}

std::vector<VertexId> DistinctRandomSources(const Graph& g, size_t count,
                                            uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<VertexId> sources;
  while (sources.size() < count && sources.size() < g.vertex_count()) {
    const VertexId s = static_cast<VertexId>(rng() % g.vertex_count());
    bool dup = false;
    for (VertexId t : sources) {
      dup = dup || t == s;
    }
    if (!dup) {
      sources.push_back(s);
    }
  }
  return sources;
}

VertexId HubVertex(const Graph& g) {
  VertexId best = 0;
  uint64_t best_deg = 0;
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (g.OutDegree(v) > best_deg) {
      best_deg = g.OutDegree(v);
      best = v;
    }
  }
  return best;
}

// The differential + determinism sweep: every lane equals its solo BFS, the
// fingerprint is host-thread-invariant, and the pre-combined (per-
// destination) contract extracts the identical level table.
TEST(MsBfsTest, LanesMatchSoloBfsAcrossThreadsAndContracts) {
  const uint64_t seeds = std::max<uint64_t>(1, EnvU64("SIMDX_SWEEP_SEEDS", 2));
  const uint32_t scale = static_cast<uint32_t>(
      std::min<uint64_t>(20, std::max<uint64_t>(6, EnvU64("SIMDX_SWEEP_SCALE", 8))));
  const std::vector<uint32_t> threads = EnvThreads();

  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    const Graph g = Graph::FromEdges(GenerateRmat(scale, 8, seed), false);
    const std::vector<VertexId> sources =
        DistinctRandomSources(g, 64, seed * 101);

    // Solo oracle per lane, computed once per graph.
    std::vector<std::vector<uint32_t>> oracle;
    oracle.reserve(sources.size());
    for (VertexId s : sources) {
      oracle.push_back(RunBfs(g, s, MakeK40(), TestOptions()).values);
    }

    std::string reference_fp;
    for (const bool pre_combine : {false, true}) {
      for (const uint32_t host_threads : threads) {
        EngineOptions o = TestOptions();
        o.host_threads = host_threads;
        o.pre_combine_replay = pre_combine;
        o.pre_combine_collect = pre_combine;
        const MsBfsRunResult ms = RunMsBfs(g, sources, MakeK40(), o);
        ASSERT_TRUE(ms.run.stats.ok());
        ASSERT_EQ(ms.state.lanes(), sources.size());
        for (uint32_t lane = 0; lane < ms.state.lanes(); ++lane) {
          EXPECT_EQ(ExtractLaneLevels(ms.state, lane), oracle[lane])
              << "seed " << seed << " lane " << lane << " threads "
              << host_threads << " pre_combine " << pre_combine;
        }
        // Thread invariance holds per contract; the contracts themselves
        // legitimately differ (kPerRecord vs kPerDestination counters).
        const std::string fp = StatsFingerprint(ms.run);
        if (host_threads == threads.front()) {
          reference_fp = fp;
        } else {
          EXPECT_EQ(fp, reference_fp)
              << "host_threads must not change the simulated stats";
        }
      }
    }
  }
}

// The batching economics gate from the coalescing design: 64 sources in one
// bit-parallel run cost < 2x the edge work of ONE exhaustive single-source
// traversal of the same graph. Apples to apples: the baseline is a
// force_push BFS (visits every edge of the reached region exactly once —
// the same full-coverage unit MS-BFS must pay at minimum), the sources are
// drawn from the traversed component (a source in a far-flung islet can
// never settle the lane mask, which disables the census policy — and no
// client batches queries about disconnected islets with hub traffic).
TEST(MsBfsTest, SixtyFourSourcesUnderTwiceOneTraversalsEdgeWork) {
  const Graph g = Graph::FromEdges(GenerateRmat(10, 16, 3), false);
  EngineOptions push_only = TestOptions();
  push_only.force_push = true;
  const VertexId hub = HubVertex(g);
  const auto baseline = RunBfs(g, hub, MakeK40(), push_only);
  ASSERT_TRUE(baseline.stats.ok());
  ASSERT_GT(baseline.stats.total_edges_processed, 0u);

  std::mt19937_64 rng(7);
  std::vector<VertexId> sources;
  while (sources.size() < 64) {
    const VertexId s = static_cast<VertexId>(rng() % g.vertex_count());
    if (baseline.values[s] == kInfinity) {
      continue;  // outside the traversed component
    }
    bool dup = false;
    for (VertexId t : sources) {
      dup = dup || t == s;
    }
    if (!dup) {
      sources.push_back(s);
    }
  }

  const MsBfsRunResult ms = RunMsBfs(g, sources, MakeK40(), TestOptions());
  ASSERT_TRUE(ms.run.stats.ok());
  EXPECT_LT(ms.run.stats.total_edges_processed,
            2 * baseline.stats.total_edges_processed)
      << "direction pattern: " << ms.run.stats.direction_pattern;
  // The win must come from the census policy actually engaging: the late
  // waves gather instead of re-pushing.
  EXPECT_NE(ms.run.stats.direction_pattern.find('P'), std::string::npos)
      << "expected pull iterations, got " << ms.run.stats.direction_pattern;
  // And the cheap run still answers correctly.
  for (uint32_t lane = 0; lane < ms.state.lanes(); ++lane) {
    ASSERT_EQ(ExtractLaneLevels(ms.state, lane),
              RunBfs(g, sources[lane], MakeK40(), TestOptions()).values)
        << "lane " << lane;
  }
}

TEST(MsBfsTest, LaneAssemblyDedupsAndCapsAtSixtyFour) {
  MsBfsState state;
  // Duplicates collapse onto the first lane...
  MsBfsInit(&state, {5, 9, 5, 9, 11}, 16);
  EXPECT_EQ(state.lanes(), 3u);
  EXPECT_EQ(state.LaneOf(5), 0u);
  EXPECT_EQ(state.LaneOf(9), 1u);
  EXPECT_EQ(state.LaneOf(11), 2u);
  EXPECT_EQ(state.full_mask, 0x7ull);
  // ...and distinct sources beyond the machine-word width are dropped.
  std::vector<VertexId> many;
  for (VertexId v = 0; v < 80; ++v) {
    many.push_back(v);
  }
  MsBfsInit(&state, many, 128);
  EXPECT_EQ(state.lanes(), 64u);
  EXPECT_EQ(state.full_mask, ~0ull);
  EXPECT_EQ(state.LaneOf(79), 64u) << "dropped source has no lane";
}

// A faulted multi-source run resumed from a checkpoint must reproduce the
// uninterrupted answer bit-for-bit — the level table rides the program-state
// checkpoint section (Save/RestoreSchedulerState), and the settled census is
// rebuilt, not restored, so the direction policy sees identical inputs.
TEST(MsBfsTest, ResumedRunReproducesLevelsBitForBit) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 5), false);
  const std::vector<VertexId> sources = DistinctRandomSources(g, 64, 77);
  const EngineOptions o = TestOptions();

  const MsBfsRunResult clean = RunMsBfs(g, sources, MakeK40(), o);
  ASSERT_TRUE(clean.run.stats.ok());

  FaultRegistry faults;
  std::string error;
  ASSERT_TRUE(FaultRegistry::Parse("iteration-start@2", &faults, &error))
      << error;
  RobustRunOptions robust;
  robust.checkpoint_every = 1;
  robust.max_attempts = 2;
  robust.faults = &faults;

  MsBfsRunResult resumed;
  MsBfsInit(&resumed.state, sources, g.vertex_count());
  MsBfsProgram program;
  program.state = &resumed.state;
  program.graph = &g;
  Engine<MsBfsProgram> engine(g, MakeK40(), o);
  resumed.run = RobustRun(engine, program, robust);
  ASSERT_TRUE(resumed.run.stats.ok());
  EXPECT_EQ(resumed.run.stats.outcome, RunOutcome::kResumed);
  EXPECT_EQ(resumed.state.levels, clean.state.levels);
  EXPECT_EQ(resumed.run.values, clean.run.values);
}

}  // namespace
}  // namespace simdx
