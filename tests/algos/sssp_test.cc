#include "algos/sssp.h"

#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 128;
  return o;
}

// The paper's Figure 1 walkthrough endpoint: final distance array.
TEST(SsspTest, PaperFigure1Distances) {
  const Graph g = Graph::FromEdges(PaperFigure1Graph(), false);
  const auto result = RunSssp(g, 0, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  const std::vector<uint32_t> expected = {0, 4, 5, 1, 3, 4, 6, 7, 9};
  EXPECT_EQ(result.values, expected);
}

TEST(SsspTest, MatchesDijkstraOnWeightedShapes) {
  EdgeList grid = GenerateGridRoad(15, 15, 3);
  EdgeList rmat = GenerateRmat(9, 8, 4);
  for (const EdgeList& shape : {grid, rmat}) {
    const Graph g = Graph::FromEdges(shape, false);
    const auto result = RunSssp(g, 0, MakeK40(), TestOptions());
    ASSERT_TRUE(result.stats.ok());
    EXPECT_EQ(result.values, CpuDijkstra(g, 0));
  }
}

TEST(SsspTest, MatchesDijkstraOnAllPresets) {
  for (const PresetInfo& info : AllPresets()) {
    const Graph g = LoadPreset(info.abbrev);
    const auto result = RunSssp(g, 0, MakeK40(), TestOptions());
    ASSERT_TRUE(result.stats.ok()) << info.abbrev;
    EXPECT_EQ(result.values, CpuDijkstra(g, 0)) << info.abbrev;
  }
}

TEST(SsspTest, DirectedWeightsRespected) {
  EdgeList list;
  list.Add(0, 1, 10);
  list.Add(0, 2, 1);
  list.Add(2, 1, 1);
  const Graph g = Graph::FromEdges(list, true);
  const auto result = RunSssp(g, 0, MakeK40(), TestOptions());
  EXPECT_EQ(result.values[1], 2u) << "path through 2 beats direct edge";
}

TEST(SsspTest, MoreIterationsThanBfsOnWeightedGraph) {
  // SSSP revisits vertices as shorter paths arrive (Figure 1: b updated at
  // iterations 1 and 3); BFS never does.
  const Graph g = LoadPreset("RC");
  const auto bfs = RunBfs(g, 0, MakeK40(), TestOptions());
  const auto sssp = RunSssp(g, 0, MakeK40(), TestOptions());
  ASSERT_TRUE(bfs.stats.ok());
  ASSERT_TRUE(sssp.stats.ok());
  EXPECT_GE(sssp.stats.iterations, bfs.stats.iterations);
  EXPECT_GT(sssp.stats.total_active, bfs.stats.total_active);
}

TEST(SsspTest, UnreachableVerticesStayInfinite) {
  const Graph g = Graph::FromEdges(GenerateChain(5), false, 8);
  const auto result = RunSssp(g, 0, MakeK40(), TestOptions());
  EXPECT_EQ(result.values[6], kInfinity);
  EXPECT_EQ(result.values[7], kInfinity);
}

}  // namespace
}  // namespace simdx
