#include "algos/ppr.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algos/algos.h"
#include "bench/common.h"
#include "graph/generators.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 128;
  o.max_iterations = 20000;
  return o;
}

// Highest-out-degree vertex: start in the giant component (tests link the
// core lib only, so bench::DefaultSource is re-derived here).
VertexId HubSource(const Graph& g) {
  VertexId best = 0;
  for (VertexId v = 1; v < g.vertex_count(); ++v) {
    if (g.OutDegree(v) > g.OutDegree(best)) {
      best = v;
    }
  }
  return best;
}

// Dense power iteration on p = (1-d) e_s + d M p, the fixpoint PprProgram's
// residual scheme converges to.
std::vector<double> CpuPpr(const Graph& g, VertexId source, double damping,
                           uint32_t rounds = 4000) {
  const size_t n = g.vertex_count();
  std::vector<double> p(n, 0.0);
  std::vector<double> next(n);
  for (uint32_t it = 0; it < rounds; ++it) {
    std::fill(next.begin(), next.end(), 0.0);
    next[source] = 1.0 - damping;
    for (VertexId u = 0; u < n; ++u) {
      const uint32_t degree = g.OutDegree(u);
      if (degree == 0 || p[u] == 0.0) {
        continue;
      }
      const double share = damping * p[u] / degree;
      for (VertexId v : g.out().Neighbors(u)) {
        next[v] += share;
      }
    }
    p.swap(next);
  }
  return p;
}

TEST(PprTest, MatchesPowerIterationOnSkewedGraph) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 3), false);
  const VertexId source = HubSource(g);
  const auto result = RunPpr(g, source, MakeK40(), TestOptions(), 1e-12);
  ASSERT_TRUE(result.stats.ok());
  const auto oracle = CpuPpr(g, source, 0.85);
  ASSERT_EQ(result.values.size(), oracle.size());
  for (size_t v = 0; v < oracle.size(); ++v) {
    EXPECT_NEAR(result.values[v].rank, oracle[v], 1e-7) << "vertex " << v;
  }
}

TEST(PprTest, MassConcentratesAtTheSource) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 6, 9), true);
  const VertexId source = HubSource(g);
  const auto result = RunPpr(g, source, MakeK40(), TestOptions(), 1e-12);
  ASSERT_TRUE(result.stats.ok());
  // The source holds at least the teleport mass it was seeded with; vertices
  // the source cannot reach hold exactly zero.
  EXPECT_GE(result.values[source].rank, 1.0 - 0.85);
  const auto dist = RunBfs(g, source, MakeK40(), TestOptions());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (dist.values[v] == kInfinity) {
      EXPECT_EQ(result.values[v].rank, 0.0) << "unreachable vertex " << v;
    }
  }
}

TEST(PprTest, DeterministicAcrossHostThreads) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 5), false);
  const VertexId source = HubSource(g);
  EngineOptions serial = TestOptions();
  serial.host_threads = 1;
  EngineOptions parallel = TestOptions();
  parallel.host_threads = 3;
  parallel.parallel_replay_min_records = 0;
  const auto a = RunPpr(g, source, MakeK40(), serial, 1e-12);
  const auto b = RunPpr(g, source, MakeK40(), parallel, 1e-12);
  ASSERT_TRUE(a.stats.ok());
  ASSERT_TRUE(b.stats.ok());
  EXPECT_EQ(bench::StatsFingerprint(a), bench::StatsFingerprint(b));
}

TEST(PprTest, IsolatedSourceKeepsAllMass) {
  const Graph g = Graph::FromEdges(EdgeList{}, false, /*vertex_count=*/4);
  const auto result = RunPpr(g, 2, MakeK40(), TestOptions(), 1e-12);
  ASSERT_TRUE(result.stats.ok());
  EXPECT_NEAR(result.values[2].rank, 1.0 - 0.85, 1e-12);
  for (VertexId v : {0u, 1u, 3u}) {
    EXPECT_EQ(result.values[v].rank, 0.0);
  }
}

}  // namespace
}  // namespace simdx
