#include "algos/spmv.h"

#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 64;
  return o;
}

std::vector<double> Ones(VertexId n) { return std::vector<double>(n, 1.0); }

TEST(SpmvTest, MatchesOracleOnWeightedGraph) {
  const Graph g = Graph::FromEdges(GenerateRmat(8, 8, 3), false);
  std::vector<double> x(g.vertex_count());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    x[v] = 0.25 * v;
  }
  const auto result = RunSpmv(g, x, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  const auto oracle = CpuSpmv(g, x);
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    EXPECT_NEAR(result.values[v].y, oracle[v], 1e-9) << "row " << v;
  }
}

TEST(SpmvTest, OnesVectorGivesWeightedDegree) {
  const Graph g = Graph::FromEdges(GenerateChain(5), false);
  const auto result = RunSpmv(g, Ones(5), MakeK40(), TestOptions());
  // Row v sums the weights of its in-edges (all 1 on a chain).
  EXPECT_NEAR(result.values[0].y, 1.0, 1e-12);
  EXPECT_NEAR(result.values[1].y, 2.0, 1e-12);
  EXPECT_NEAR(result.values[4].y, 1.0, 1e-12);
}

TEST(SpmvTest, RunsExactlyOneIteration) {
  const Graph g = Graph::FromEdges(GenerateComplete(6), false);
  const auto result = RunSpmv(g, Ones(6), MakeK40(), TestOptions());
  EXPECT_EQ(result.stats.iterations, 1u);
}

TEST(SpmvTest, DirectedUsesInEdges) {
  EdgeList list;
  list.Add(0, 1, 3);  // contributes to row 1 only
  const Graph g = Graph::FromEdges(list, true);
  std::vector<double> x = {2.0, 10.0};
  const auto result = RunSpmv(g, x, MakeK40(), TestOptions());
  EXPECT_NEAR(result.values[0].y, 0.0, 1e-12);
  EXPECT_NEAR(result.values[1].y, 6.0, 1e-12);
}

TEST(SpmvTest, ZeroVectorGivesZero) {
  const Graph g = Graph::FromEdges(GenerateRmat(7, 4, 2), false);
  const auto result =
      RunSpmv(g, std::vector<double>(g.vertex_count(), 0.0), MakeK40(), TestOptions());
  for (const auto& value : result.values) {
    EXPECT_EQ(value.y, 0.0);
  }
}

}  // namespace
}  // namespace simdx
