// Algebraic-law property tests for every ACC program: the paper's Combine
// contract requires a commutative, associative operator (Section 3.2), and
// Apply must be monotone/idempotent where the engine relies on it (duplicate
// frontier entries, in-place push). Violations here would corrupt results
// silently, so they are checked as laws over random value streams.
#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "algos/algos.h"
#include "graph/generators.h"

namespace simdx {
namespace {

template <typename Program, typename Gen>
void CheckCombineLaws(const Program& p, Gen gen, int trials = 200) {
  std::mt19937_64 rng(7);
  using Value = typename Program::Value;
  for (int t = 0; t < trials; ++t) {
    const Value a = gen(rng);
    const Value b = gen(rng);
    const Value c = gen(rng);
    EXPECT_EQ(p.Combine(a, b), p.Combine(b, a)) << "commutativity, trial " << t;
    EXPECT_EQ(p.Combine(p.Combine(a, b), c), p.Combine(a, p.Combine(b, c)))
        << "associativity, trial " << t;
    // Identity is neutral.
    EXPECT_EQ(p.Combine(a, p.CombineIdentity()), a) << "identity, trial " << t;
  }
}

TEST(AccLawsTest, BfsCombineIsMin) {
  BfsProgram p;
  CheckCombineLaws(p, [](std::mt19937_64& rng) {
    return static_cast<uint32_t>(rng() % 1000);
  });
}

TEST(AccLawsTest, SsspCombineIsMin) {
  SsspProgram p;
  CheckCombineLaws(p, [](std::mt19937_64& rng) {
    return static_cast<uint32_t>(rng() % 100000);
  });
}

TEST(AccLawsTest, WccCombineIsMin) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  WccProgram p;
  p.graph = &g;
  CheckCombineLaws(p, [](std::mt19937_64& rng) {
    return static_cast<uint32_t>(rng() % 4);
  });
}

TEST(AccLawsTest, KCoreCombineIsSum) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  KCoreProgram p;
  p.graph = &g;
  CheckCombineLaws(p, [](std::mt19937_64& rng) {
    return KCoreValue{static_cast<uint32_t>(rng() % 8), false};
  });
}

// Floating-point sums: associativity holds only up to rounding; check with
// tolerance instead of exact equality.
TEST(AccLawsTest, PageRankCombineIsSumWithinRounding) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  PageRankProgram p;
  p.graph = &g;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (int t = 0; t < 200; ++t) {
    const PageRankValue a{0.0, uni(rng)};
    const PageRankValue b{0.0, uni(rng)};
    const PageRankValue c{0.0, uni(rng)};
    EXPECT_DOUBLE_EQ(p.Combine(a, b).residual, p.Combine(b, a).residual);
    EXPECT_NEAR(p.Combine(p.Combine(a, b), c).residual,
                p.Combine(a, p.Combine(b, c)).residual, 1e-12);
  }
}

// Apply idempotence for the min-family: re-applying the same combined update
// must be a no-op (duplicate frontier entries are harmless).
TEST(AccLawsTest, MinApplyIsIdempotent) {
  BfsProgram bfs;
  SsspProgram sssp;
  std::mt19937_64 rng(13);
  for (int t = 0; t < 200; ++t) {
    const uint32_t old_value = rng() % 1000;
    const uint32_t update = rng() % 1000;
    const uint32_t once = bfs.Apply(0, update, old_value, Direction::kPush);
    EXPECT_EQ(bfs.Apply(0, update, once, Direction::kPush), once);
    const uint32_t s_once = sssp.Apply(0, update, old_value, Direction::kPush);
    EXPECT_EQ(sssp.Apply(0, update, s_once, Direction::kPush), s_once);
  }
}

// k-Core's freeze: once removed, no sequence of updates changes the value —
// the guarantee that a removed vertex never re-sends its removal.
TEST(AccLawsTest, KCoreFreezeIsAbsorbing) {
  const Graph g = Graph::FromEdges(GenerateStar(8), false);
  KCoreProgram p;
  p.graph = &g;
  p.k = 4;
  const KCoreValue removed{2, true};
  std::mt19937_64 rng(17);
  for (int t = 0; t < 100; ++t) {
    const KCoreValue update{static_cast<uint32_t>(rng() % 4), false};
    EXPECT_EQ(p.Apply(1, update, removed, Direction::kPush), removed);
    EXPECT_EQ(p.Apply(1, update, removed, Direction::kPull), removed);
  }
}

// --- CombineCapability enforcement ---
//
// kAssociativeOnly is a promise the pre-combining replay relies on: the
// engine will fold a destination's records with Combine in an arbitrary
// GROUPING (though fixed order) before one Apply. A wrong flag silently
// changes results, so the flag is enforced here: every program declaring
// kAssociativeOnly must pass randomized associativity/commutativity/identity
// law checks on its Combine — exactly for integer values, within rounding
// for floating-point sums — and the order-sensitive declarations are pinned
// with counterexamples showing why folding would be wrong.

// Randomized Combine-law harness; `eq(a, b)` is the value comparator (exact
// or tolerant).
template <typename Program, typename Gen, typename Eq>
void EnforceAssociativeLaws(const Program& p, Gen gen, Eq eq,
                            int trials = 500) {
  ASSERT_EQ(p.combine_capability(), CombineCapability::kAssociativeOnly);
  std::mt19937_64 rng(29);
  for (int t = 0; t < trials; ++t) {
    const auto a = gen(rng);
    const auto b = gen(rng);
    const auto c = gen(rng);
    EXPECT_TRUE(eq(p.Combine(a, b), p.Combine(b, a)))
        << "commutativity, trial " << t;
    EXPECT_TRUE(eq(p.Combine(p.Combine(a, b), c), p.Combine(a, p.Combine(b, c))))
        << "associativity, trial " << t;
    EXPECT_TRUE(eq(p.Combine(a, p.CombineIdentity()), a))
        << "right identity, trial " << t;
    EXPECT_TRUE(eq(p.Combine(p.CombineIdentity(), a), a))
        << "left identity, trial " << t;
  }
}

TEST(CombineCapabilityTest, BfsDeclarationEnforced) {
  BfsProgram p;
  EnforceAssociativeLaws(
      p, [](std::mt19937_64& rng) { return static_cast<uint32_t>(rng() % 1000); },
      [](uint32_t a, uint32_t b) { return a == b; });
  // The fold promise extends through Apply: folding two records then
  // applying once equals applying each in sequence (exact for min).
  std::mt19937_64 rng(31);
  for (int t = 0; t < 300; ++t) {
    const uint32_t old_value = rng() % 1000;
    const uint32_t r1 = rng() % 1000;
    const uint32_t r2 = rng() % 1000;
    const uint32_t folded =
        p.Apply(0, p.Combine(r1, r2), old_value, Direction::kPush);
    const uint32_t seq = p.Apply(
        0, r2, p.Apply(0, r1, old_value, Direction::kPush), Direction::kPush);
    EXPECT_EQ(folded, seq) << "apply-fold equivalence, trial " << t;
  }
}

TEST(CombineCapabilityTest, MsBfsDeclarationEnforced) {
  MsBfsState state;
  MsBfsInit(&state, {0, 1, 2, 3}, 8);
  MsBfsProgram p;
  p.state = &state;
  EnforceAssociativeLaws(
      p, [](std::mt19937_64& rng) { return rng() & 0xFull; },
      [](uint64_t a, uint64_t b) { return a == b; });
  // The fold promise through Apply, INCLUDING the settle-time side effect:
  // OR-folding two records then applying once must produce the same mask
  // and stamp the same levels as applying each record in sequence (bits are
  // idempotent under OR and a bit's level is written only on first
  // arrival, so grouping cannot move a stamp).
  std::mt19937_64 rng(41);
  for (int t = 0; t < 300; ++t) {
    const uint64_t old_value = rng() & 0xFull;
    const uint64_t r1 = rng() & 0xFull;
    const uint64_t r2 = rng() & 0xFull;
    state.depth = 1 + static_cast<uint32_t>(t % 3);
    auto stamp_row = [&](VertexId v) {
      const uint32_t lanes = state.lanes();
      return std::vector<uint32_t>(state.levels.begin() + v * lanes,
                                   state.levels.begin() + (v + 1) * lanes);
    };
    // Vertex 6 takes the folded update, vertex 7 the sequential pair; both
    // start from identical (never-settled) rows.
    const uint64_t folded =
        p.Apply(6, p.Combine(r1, r2), old_value, Direction::kPush);
    const uint64_t seq = p.Apply(
        7, r2, p.Apply(7, r1, old_value, Direction::kPush), Direction::kPush);
    EXPECT_EQ(folded, seq) << "apply-fold equivalence, trial " << t;
    EXPECT_EQ(stamp_row(6), stamp_row(7)) << "settle-stamp equivalence, trial "
                                          << t;
    // Reset the two scratch rows (and their settled census) per trial.
    const uint32_t lanes = state.lanes();
    for (uint32_t lane = 0; lane < lanes; ++lane) {
      state.levels[6 * lanes + lane] = kInfinity;
      state.levels[7 * lanes + lane] = kInfinity;
    }
    state.lanes_set[6] = 0;
    state.lanes_set[7] = 0;
  }
}

TEST(CombineCapabilityTest, WccDeclarationEnforced) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  WccProgram p;
  p.graph = &g;
  EnforceAssociativeLaws(
      p, [](std::mt19937_64& rng) { return static_cast<uint32_t>(rng() % 64); },
      [](uint32_t a, uint32_t b) { return a == b; });
  std::mt19937_64 rng(37);
  for (int t = 0; t < 300; ++t) {
    const uint32_t old_value = rng() % 64;
    const uint32_t r1 = rng() % 64;
    const uint32_t r2 = rng() % 64;
    EXPECT_EQ(p.Apply(0, p.Combine(r1, r2), old_value, Direction::kPush),
              p.Apply(0, r2, p.Apply(0, r1, old_value, Direction::kPush),
                      Direction::kPush));
  }
}

TEST(CombineCapabilityTest, PageRankDeclarationEnforcedWithinRounding) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  PageRankProgram p;
  p.graph = &g;
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  EnforceAssociativeLaws(
      p,
      [&uni](std::mt19937_64& rng) {
        return PageRankValue{0.0, uni(rng)};
      },
      [](const PageRankValue& a, const PageRankValue& b) {
        return std::abs(a.residual - b.residual) <= 1e-12;
      });
}

TEST(CombineCapabilityTest, BpDeclarationEnforcedWithinRounding) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  BpProgram p;
  p.graph = &g;
  std::uniform_real_distribution<double> uni(-1.0, 1.0);
  EnforceAssociativeLaws(
      p, [&uni](std::mt19937_64& rng) { return uni(rng); },
      [](double a, double b) { return std::abs(a - b) <= 1e-12; });
}

TEST(CombineCapabilityTest, SpmvDeclarationEnforcedWithinRounding) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  const std::vector<double> x(4, 1.0);
  SpmvProgram p;
  p.graph = &g;
  p.input = &x;
  std::uniform_real_distribution<double> uni(-10.0, 10.0);
  EnforceAssociativeLaws(
      p, [&uni](std::mt19937_64& rng) { return SpmvValue{0.0, uni(rng)}; },
      [](const SpmvValue& a, const SpmvValue& b) {
        return std::abs(a.y - b.y) <= 1e-9;
      });
}

TEST(CombineCapabilityTest, OrderSensitiveDeclarationsPinned) {
  // SSSP: Apply parks each improving-but-out-of-bucket RECORD; folding
  // collapses parks (see sssp.h). k-Core: the freeze fires mid-stream.
  // These must never silently flip to kAssociativeOnly.
  SsspProgram sssp;
  EXPECT_EQ(sssp.combine_capability(), CombineCapability::kOrderSensitive);
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  KCoreProgram kcore;
  kcore.graph = &g;
  EXPECT_EQ(kcore.combine_capability(), CombineCapability::kOrderSensitive);
}

TEST(CombineCapabilityTest, KCoreFoldCounterexample) {
  // The concrete reason k-Core is order-sensitive: per-record applies freeze
  // the degree AT the removal threshold crossing, a fold subtracts
  // everything. Start at degree 12 with k=11 and three removal records.
  const Graph g = Graph::FromEdges(GenerateStar(16), false);
  KCoreProgram p;
  p.graph = &g;
  p.k = 11;
  const KCoreValue old_value{12, 0};
  const KCoreValue rec{1, 0};
  // Sequential: 12 -> 11 (alive) -> 10 (removed, frozen) -> still 10.
  KCoreValue seq = old_value;
  for (int i = 0; i < 3; ++i) {
    seq = p.Apply(1, rec, seq, Direction::kPush);
  }
  EXPECT_EQ(seq, (KCoreValue{10, 1}));
  // Folded: 12 - 3 = 9 — a DIFFERENT frozen degree. Both agree the vertex
  // is removed (monotone), but the value bytes differ, which is exactly
  // what the per-destination determinism gates would trip on.
  const KCoreValue folded =
      p.Apply(1, p.Combine(p.Combine(rec, rec), rec), old_value, Direction::kPush);
  EXPECT_EQ(folded, (KCoreValue{9, 1}));
  EXPECT_NE(seq, folded);
}

// Compute must be direction-independent for the symmetric programs (the
// engine may evaluate the same edge in push or pull mode across iterations).
TEST(AccLawsTest, ComputeDirectionIndependentForTraversals) {
  BfsProgram bfs;
  SsspProgram sssp;
  for (uint32_t v = 0; v < 50; ++v) {
    EXPECT_EQ(bfs.Compute(0, 1, 3, v, Direction::kPush),
              bfs.Compute(0, 1, 3, v, Direction::kPull));
    EXPECT_EQ(sssp.Compute(0, 1, 3, v, Direction::kPush),
              sssp.Compute(0, 1, 3, v, Direction::kPull));
  }
}

// Saturation: unreached sources must contribute the identity, never wrap.
TEST(AccLawsTest, InfinityNeverWraps) {
  BfsProgram bfs;
  SsspProgram sssp;
  EXPECT_EQ(bfs.Compute(0, 1, 1, kInfinity, Direction::kPush), kInfinity);
  EXPECT_EQ(sssp.Compute(0, 1, 64, kInfinity, Direction::kPush), kInfinity);
}

}  // namespace
}  // namespace simdx
