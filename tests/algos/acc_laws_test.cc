// Algebraic-law property tests for every ACC program: the paper's Combine
// contract requires a commutative, associative operator (Section 3.2), and
// Apply must be monotone/idempotent where the engine relies on it (duplicate
// frontier entries, in-place push). Violations here would corrupt results
// silently, so they are checked as laws over random value streams.
#include <gtest/gtest.h>

#include <random>

#include "algos/algos.h"
#include "graph/generators.h"

namespace simdx {
namespace {

template <typename Program, typename Gen>
void CheckCombineLaws(const Program& p, Gen gen, int trials = 200) {
  std::mt19937_64 rng(7);
  using Value = typename Program::Value;
  for (int t = 0; t < trials; ++t) {
    const Value a = gen(rng);
    const Value b = gen(rng);
    const Value c = gen(rng);
    EXPECT_EQ(p.Combine(a, b), p.Combine(b, a)) << "commutativity, trial " << t;
    EXPECT_EQ(p.Combine(p.Combine(a, b), c), p.Combine(a, p.Combine(b, c)))
        << "associativity, trial " << t;
    // Identity is neutral.
    EXPECT_EQ(p.Combine(a, p.CombineIdentity()), a) << "identity, trial " << t;
  }
}

TEST(AccLawsTest, BfsCombineIsMin) {
  BfsProgram p;
  CheckCombineLaws(p, [](std::mt19937_64& rng) {
    return static_cast<uint32_t>(rng() % 1000);
  });
}

TEST(AccLawsTest, SsspCombineIsMin) {
  SsspProgram p;
  CheckCombineLaws(p, [](std::mt19937_64& rng) {
    return static_cast<uint32_t>(rng() % 100000);
  });
}

TEST(AccLawsTest, WccCombineIsMin) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  WccProgram p;
  p.graph = &g;
  CheckCombineLaws(p, [](std::mt19937_64& rng) {
    return static_cast<uint32_t>(rng() % 4);
  });
}

TEST(AccLawsTest, KCoreCombineIsSum) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  KCoreProgram p;
  p.graph = &g;
  CheckCombineLaws(p, [](std::mt19937_64& rng) {
    return KCoreValue{static_cast<uint32_t>(rng() % 8), false};
  });
}

// Floating-point sums: associativity holds only up to rounding; check with
// tolerance instead of exact equality.
TEST(AccLawsTest, PageRankCombineIsSumWithinRounding) {
  const Graph g = Graph::FromEdges(GenerateChain(4), false);
  PageRankProgram p;
  p.graph = &g;
  std::mt19937_64 rng(11);
  std::uniform_real_distribution<double> uni(0.0, 1.0);
  for (int t = 0; t < 200; ++t) {
    const PageRankValue a{0.0, uni(rng)};
    const PageRankValue b{0.0, uni(rng)};
    const PageRankValue c{0.0, uni(rng)};
    EXPECT_DOUBLE_EQ(p.Combine(a, b).residual, p.Combine(b, a).residual);
    EXPECT_NEAR(p.Combine(p.Combine(a, b), c).residual,
                p.Combine(a, p.Combine(b, c)).residual, 1e-12);
  }
}

// Apply idempotence for the min-family: re-applying the same combined update
// must be a no-op (duplicate frontier entries are harmless).
TEST(AccLawsTest, MinApplyIsIdempotent) {
  BfsProgram bfs;
  SsspProgram sssp;
  std::mt19937_64 rng(13);
  for (int t = 0; t < 200; ++t) {
    const uint32_t old_value = rng() % 1000;
    const uint32_t update = rng() % 1000;
    const uint32_t once = bfs.Apply(0, update, old_value, Direction::kPush);
    EXPECT_EQ(bfs.Apply(0, update, once, Direction::kPush), once);
    const uint32_t s_once = sssp.Apply(0, update, old_value, Direction::kPush);
    EXPECT_EQ(sssp.Apply(0, update, s_once, Direction::kPush), s_once);
  }
}

// k-Core's freeze: once removed, no sequence of updates changes the value —
// the guarantee that a removed vertex never re-sends its removal.
TEST(AccLawsTest, KCoreFreezeIsAbsorbing) {
  const Graph g = Graph::FromEdges(GenerateStar(8), false);
  KCoreProgram p;
  p.graph = &g;
  p.k = 4;
  const KCoreValue removed{2, true};
  std::mt19937_64 rng(17);
  for (int t = 0; t < 100; ++t) {
    const KCoreValue update{static_cast<uint32_t>(rng() % 4), false};
    EXPECT_EQ(p.Apply(1, update, removed, Direction::kPush), removed);
    EXPECT_EQ(p.Apply(1, update, removed, Direction::kPull), removed);
  }
}

// Compute must be direction-independent for the symmetric programs (the
// engine may evaluate the same edge in push or pull mode across iterations).
TEST(AccLawsTest, ComputeDirectionIndependentForTraversals) {
  BfsProgram bfs;
  SsspProgram sssp;
  for (uint32_t v = 0; v < 50; ++v) {
    EXPECT_EQ(bfs.Compute(0, 1, 3, v, Direction::kPush),
              bfs.Compute(0, 1, 3, v, Direction::kPull));
    EXPECT_EQ(sssp.Compute(0, 1, 3, v, Direction::kPush),
              sssp.Compute(0, 1, 3, v, Direction::kPull));
  }
}

// Saturation: unreached sources must contribute the identity, never wrap.
TEST(AccLawsTest, InfinityNeverWraps) {
  BfsProgram bfs;
  SsspProgram sssp;
  EXPECT_EQ(bfs.Compute(0, 1, 1, kInfinity, Direction::kPush), kInfinity);
  EXPECT_EQ(sssp.Compute(0, 1, 64, kInfinity, Direction::kPush), kInfinity);
}

}  // namespace
}  // namespace simdx
