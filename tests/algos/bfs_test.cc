#include "algos/bfs.h"

#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 128;
  return o;
}

TEST(BfsTest, MatchesOracleOnShapes) {
  for (const EdgeList& shape :
       {GenerateChain(64), GenerateStar(64), GenerateBinaryTree(6),
        GenerateComplete(20), GenerateGridRoad(20, 20, 1)}) {
    const Graph g = Graph::FromEdges(shape, false);
    const auto result = RunBfs(g, 0, MakeK40(), TestOptions());
    ASSERT_TRUE(result.stats.ok());
    EXPECT_EQ(result.values, CpuBfsLevels(g, 0));
  }
}

TEST(BfsTest, DirectedGraphRespectsEdgeOrientation) {
  const Graph g = Graph::FromEdges(GenerateChain(10), /*directed=*/true);
  const auto from_tail = RunBfs(g, 9, MakeK40(), TestOptions());
  EXPECT_EQ(from_tail.values[9], 0u);
  EXPECT_EQ(from_tail.values[0], kInfinity) << "no back edges in directed chain";
}

TEST(BfsTest, DirectionSwitchesToPullOnDenseFrontier) {
  // Social-class preset: the middle of the traversal floods the graph.
  const Graph g = LoadPreset("OR");
  const auto result = RunBfs(g, 0, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  EXPECT_NE(result.stats.direction_pattern.find('P'), std::string::npos)
      << "expected at least one pull iteration, got "
      << result.stats.direction_pattern;
  EXPECT_EQ(result.stats.direction_pattern.front(), 'p') << "BFS starts pushing";
}

TEST(BfsTest, RoadGraphStaysPushAndOnline) {
  const Graph g = LoadPreset("RC");
  const auto result = RunBfs(g, 0, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.stats.direction_pattern.find('P'), std::string::npos)
      << "thin road frontiers never justify pull";
  EXPECT_EQ(result.stats.filter_pattern.find('B'), std::string::npos)
      << "Figure 8: high-diameter graphs use the online filter throughout";
  EXPECT_GT(result.stats.iterations, 100u) << "high diameter = many levels";
}

TEST(BfsTest, MatchesOracleOnAllPresets) {
  for (const PresetInfo& info : AllPresets()) {
    const Graph g = LoadPreset(info.abbrev);
    const auto result = RunBfs(g, 0, MakeK40(), TestOptions());
    ASSERT_TRUE(result.stats.ok()) << info.abbrev;
    EXPECT_EQ(result.values, CpuBfsLevels(g, 0)) << info.abbrev;
  }
}

TEST(BfsTest, SourceOutOfNowhereVisitsOnlyItself) {
  const Graph g = Graph::FromEdges(GenerateChain(5), false, 8);
  const auto result = RunBfs(g, 7, MakeK40(), TestOptions());
  EXPECT_EQ(result.values[7], 0u);
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(result.values[v], kInfinity);
  }
}

}  // namespace
}  // namespace simdx
