#include "algos/scc.h"

#include <gtest/gtest.h>

#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 64;
  return o;
}

TEST(SccTest, DirectedChainIsAllSingletons) {
  const Graph g = Graph::FromEdges(GenerateChain(8), /*directed=*/true);
  const auto scc = RunScc(g, MakeK40(), TestOptions());
  for (VertexId v = 0; v < 8; ++v) {
    EXPECT_EQ(scc[v], v) << "no cycles: every vertex is its own SCC";
  }
}

TEST(SccTest, DirectedCycleIsOneComponent) {
  EdgeList list;
  for (VertexId v = 0; v < 6; ++v) {
    list.Add(v, (v + 1) % 6);
  }
  const Graph g = Graph::FromEdges(list, true);
  const auto scc = RunScc(g, MakeK40(), TestOptions());
  for (VertexId v = 0; v < 6; ++v) {
    EXPECT_EQ(scc[v], 5u) << "component id is the largest member";
  }
}

TEST(SccTest, TwoCyclesJoinedByOneWayBridge) {
  EdgeList list;
  // Cycle {0,1,2}, cycle {3,4,5}, bridge 2 -> 3 (one direction only).
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(2, 0);
  list.Add(3, 4);
  list.Add(4, 5);
  list.Add(5, 3);
  list.Add(2, 3);
  const Graph g = Graph::FromEdges(list, true);
  const auto scc = RunScc(g, MakeK40(), TestOptions());
  EXPECT_EQ(scc[0], scc[1]);
  EXPECT_EQ(scc[1], scc[2]);
  EXPECT_EQ(scc[3], scc[4]);
  EXPECT_EQ(scc[4], scc[5]);
  EXPECT_NE(scc[0], scc[3]) << "bridge is not part of any cycle";
}

TEST(SccTest, MatchesTarjanOnRandomDigraphs) {
  for (uint64_t seed : {3ull, 17ull, 99ull}) {
    const Graph g =
        Graph::FromEdges(GenerateUniformRandom(300, 900, seed), true, 300);
    const auto scc = RunScc(g, MakeK40(), TestOptions());
    EXPECT_EQ(scc, CpuSccLabels(g)) << "seed " << seed;
  }
}

TEST(SccTest, MatchesTarjanOnSkewedDigraphs) {
  for (uint64_t seed : {5ull, 21ull}) {
    const Graph g = Graph::FromEdges(GenerateRmat(8, 4, seed), true);
    const auto scc = RunScc(g, MakeK40(), TestOptions());
    EXPECT_EQ(scc, CpuSccLabels(g)) << "seed " << seed;
  }
}

TEST(SccTest, MatchesTarjanOnDirectedPresets) {
  for (const char* name : {"LJ", "PK"}) {
    const Graph g = LoadPreset(name);
    const auto scc = RunScc(g, MakeK40(), TestOptions());
    EXPECT_EQ(scc, CpuSccLabels(g)) << name;
  }
}

TEST(SccTest, UndirectedGraphDegeneratesToConnectivity) {
  const Graph g = Graph::FromEdges(GenerateGridRoad(8, 8, 1), false);
  const auto scc = RunScc(g, MakeK40(), TestOptions());
  for (VertexId v = 1; v < g.vertex_count(); ++v) {
    EXPECT_EQ(scc[v], scc[0]);
  }
}

TEST(SccTest, StatsAccumulateAcrossRounds) {
  const Graph g = Graph::FromEdges(GenerateUniformRandom(200, 600, 8), true, 200);
  RunStats stats;
  RunScc(g, MakeK40(), TestOptions(), &stats);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_GT(stats.time.ms, 0.0);
  EXPECT_GT(stats.total_edges_processed, 0u);
}

TEST(SccTest, EmptyGraph) {
  const Graph g;
  EXPECT_TRUE(RunScc(g, MakeK40(), TestOptions()).empty());
}

}  // namespace
}  // namespace simdx
