#include "algos/wcc.h"

#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 64;
  return o;
}

TEST(WccTest, SingleComponentSingleLabel) {
  const Graph g = Graph::FromEdges(GenerateGridRoad(15, 15, 2), false);
  const auto result = RunWcc(g, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  for (uint32_t label : result.values) {
    EXPECT_EQ(label, 0u);
  }
}

TEST(WccTest, DisjointComponentsGetDistinctMinima) {
  EdgeList list;
  list.Add(0, 1);
  list.Add(1, 2);
  list.Add(5, 6);
  const Graph g = Graph::FromEdges(list, false, /*vertex_count=*/8);
  const auto result = RunWcc(g, MakeK40(), TestOptions());
  EXPECT_EQ(result.values[0], 0u);
  EXPECT_EQ(result.values[1], 0u);
  EXPECT_EQ(result.values[2], 0u);
  EXPECT_EQ(result.values[5], 5u);
  EXPECT_EQ(result.values[6], 5u);
  EXPECT_EQ(result.values[3], 3u);  // isolated
  EXPECT_EQ(result.values[4], 4u);
  EXPECT_EQ(result.values[7], 7u);
}

TEST(WccTest, MatchesOracleOnRandomGraphs) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    // Sparse enough to leave several components.
    const Graph g =
        Graph::FromEdges(GenerateUniformRandom(600, 500, seed), false, 600);
    const auto result = RunWcc(g, MakeK40(), TestOptions());
    ASSERT_TRUE(result.stats.ok());
    EXPECT_EQ(result.values, CpuWccLabels(g)) << "seed " << seed;
  }
}

TEST(WccTest, LabelCountMatchesComponentCount) {
  const Graph g =
      Graph::FromEdges(GenerateUniformRandom(400, 300, 9), false, 400);
  const auto result = RunWcc(g, MakeK40(), TestOptions());
  std::vector<uint32_t> labels = result.values;
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  EXPECT_EQ(labels.size(), ComponentCount(g));
}

TEST(WccTest, ChainConvergesInLogIterationsWithPull) {
  // Label propagation on a chain takes ~n iterations; this guards the engine
  // terminates and produces the single label.
  const Graph g = Graph::FromEdges(GenerateChain(64), false);
  const auto result = RunWcc(g, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  EXPECT_EQ(result.values[63], 0u);
}

}  // namespace
}  // namespace simdx
