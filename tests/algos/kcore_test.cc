#include "algos/kcore.h"

#include <gtest/gtest.h>

#include "algos/algos.h"
#include "baselines/cpu_reference.h"
#include "graph/generators.h"
#include "graph/presets.h"
#include "simt/device.h"

namespace simdx {
namespace {

EngineOptions TestOptions() {
  EngineOptions o;
  o.sim_worker_threads = 128;
  return o;
}

void ExpectRemovedMatch(const std::vector<KCoreValue>& got,
                        const std::vector<bool>& expected) {
  ASSERT_EQ(got.size(), expected.size());
  for (size_t v = 0; v < got.size(); ++v) {
    EXPECT_EQ(got[v].removed, expected[v]) << "vertex " << v;
  }
}

TEST(KCoreTest, CompleteGraphSurvivesSmallK) {
  const Graph g = Graph::FromEdges(GenerateComplete(10), false);  // degree 9
  const auto result = RunKCore(g, 5, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  for (const auto& value : result.values) {
    EXPECT_FALSE(value.removed);
  }
}

TEST(KCoreTest, CompleteGraphDissolvesAtLargeK) {
  const Graph g = Graph::FromEdges(GenerateComplete(10), false);
  const auto result = RunKCore(g, 10, MakeK40(), TestOptions());
  for (const auto& value : result.values) {
    EXPECT_TRUE(value.removed);
  }
}

TEST(KCoreTest, ChainCascades) {
  // A chain has max core number 1: k=2 peels from the endpoints inward and
  // removes everything, exercising the cascade over many iterations.
  const Graph g = Graph::FromEdges(GenerateChain(40), false);
  const auto result = RunKCore(g, 2, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  for (const auto& value : result.values) {
    EXPECT_TRUE(value.removed);
  }
  EXPECT_GT(result.stats.iterations, 10u) << "peeling proceeds layer by layer";
}

TEST(KCoreTest, MatchesOracleOnShapes) {
  for (uint32_t k : {2u, 3u, 8u, 16u}) {
    for (const EdgeList& shape :
         {GenerateRmat(9, 8, 5), GenerateGridRoad(20, 20, 6), GenerateStar(64)}) {
      const Graph g = Graph::FromEdges(shape, false);
      const auto result = RunKCore(g, k, MakeK40(), TestOptions());
      ASSERT_TRUE(result.stats.ok());
      ExpectRemovedMatch(result.values, CpuKCoreRemoved(g, k));
    }
  }
}

TEST(KCoreTest, MatchesOracleOnAllPresetsAtPaperK) {
  for (const PresetInfo& info : AllPresets()) {
    const Graph g = LoadPreset(info.abbrev);
    const auto result = RunKCore(g, 16, MakeK40(), TestOptions());
    ASSERT_TRUE(result.stats.ok()) << info.abbrev;
    ExpectRemovedMatch(result.values, CpuKCoreRemoved(g, 16));
  }
}

TEST(KCoreTest, HeavyFirstIterationUsesBallot) {
  // "k-Core activates the ballot filter at the initial iterations" (Fig. 8):
  // a skewed graph with k=16 removes a large fraction immediately.
  const Graph g = LoadPreset("FB");
  EngineOptions o = TestOptions();
  o.sim_worker_threads = 64;
  const auto result = RunKCore(g, 16, MakeK40(), o);
  ASSERT_TRUE(result.stats.ok());
  ASSERT_FALSE(result.stats.filter_pattern.empty());
  EXPECT_EQ(result.stats.filter_pattern.front(), 'B')
      << "pattern: " << result.stats.filter_pattern;
}

TEST(KCoreTest, RoadGraphLowDegreeRemovesEverythingAtK16) {
  // "RC ... only experiences one iteration because all its vertices have
  // < 16 neighbors" (Section 4).
  const Graph g = LoadPreset("RC");
  const auto result = RunKCore(g, 16, MakeK40(), TestOptions());
  ASSERT_TRUE(result.stats.ok());
  for (const auto& value : result.values) {
    EXPECT_TRUE(value.removed);
  }
  EXPECT_LE(result.stats.iterations, 3u);
}

TEST(KCoreTest, SurvivorDegreesAreAtLeastK) {
  const Graph g = Graph::FromEdges(GenerateRmat(10, 12, 8), false);
  const uint32_t k = 8;
  const auto result = RunKCore(g, k, MakeK40(), TestOptions());
  for (VertexId v = 0; v < g.vertex_count(); ++v) {
    if (!result.values[v].removed) {
      uint32_t live_neighbors = 0;
      for (VertexId u : g.out().Neighbors(v)) {
        live_neighbors += !result.values[u].removed;
      }
      EXPECT_GE(live_neighbors, k) << "vertex " << v;
    }
  }
}

}  // namespace
}  // namespace simdx
