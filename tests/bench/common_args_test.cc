// Exit-code contract of the shared bench flag parsers (bench/common):
// --help exits 0, an unknown flag exits 2, and — the regression this file
// pins — a KNOWN flag missing its trailing value exits 2 with a message
// naming the flag ("flag X requires a value"), instead of falling through
// to the unknown-flag branch as every parser did when the `i + 1 < argc`
// guard lived in the match condition.
#include "bench/common.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace simdx::bench {
namespace {

// argv builder for the parser helpers (they take char**, not const char**).
class Argv {
 public:
  explicit Argv(std::vector<std::string> args) : strings_(std::move(args)) {
    for (std::string& s : strings_) {
      ptrs_.push_back(s.data());
    }
  }
  int argc() const { return static_cast<int>(ptrs_.size()); }
  char** argv() { return ptrs_.data(); }

 private:
  std::vector<std::string> strings_;
  std::vector<char*> ptrs_;
};

TEST(RequireFlagValueTest, ReturnsValueAndAdvances) {
  Argv a({"bin", "--seed", "42"});
  int i = 1;
  const char* value = RequireFlagValue(a.argc(), a.argv(), i, "--seed");
  EXPECT_STREQ(value, "42");
  EXPECT_EQ(i, 2);  // advanced past the value, loop ++ lands on argc
}

TEST(RequireFlagValueDeathTest, TrailingFlagExits2NamingTheFlag) {
  Argv a({"bin", "--seed"});
  int i = 1;
  EXPECT_EXIT(RequireFlagValue(a.argc(), a.argv(), i, "--seed"),
              ::testing::ExitedWithCode(2), "flag --seed requires a value");
}

TEST(ParseU64FlagDeathTest, NonNumericExits2) {
  EXPECT_EXIT(ParseU64Flag("12x", "--seed"), ::testing::ExitedWithCode(2),
              "--seed expects a number");
}

TEST(ParseU64FlagDeathTest, NegativeNeverWraps) {
  EXPECT_EXIT(ParseU64Flag("-1", "--seed"), ::testing::ExitedWithCode(2),
              "--seed expects a number");
}

TEST(ParseU32FlagDeathTest, OutOfRangeExits2) {
  EXPECT_EXIT(ParseU32Flag("4294967296", "--scale"),
              ::testing::ExitedWithCode(2), "--scale out of uint32 range");
}

TEST(ParseArgsDeathTest, UnknownFlagExits2WithUsage) {
  Argv a({"bin", "--bogus"});
  EXPECT_EXIT(ParseArgs(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
              "unknown flag: --bogus");
}

TEST(ParseArgsDeathTest, TrailingCsvFlagExits2NamingTheFlag) {
  Argv a({"bin", "--csv"});
  EXPECT_EXIT(ParseArgs(a.argc(), a.argv()), ::testing::ExitedWithCode(2),
              "flag --csv requires a value");
}

TEST(ParseArgsDeathTest, HelpExits0) {
  // (usage text goes to stdout; the death-test regex only sees stderr, so
  // the assertion here is purely the exit code.)
  Argv a({"bin", "--help"});
  EXPECT_EXIT(ParseArgs(a.argc(), a.argv()), ::testing::ExitedWithCode(0), "");
}

TEST(ParseArgsTest, ParsesGraphListAndQuick) {
  Argv a({"bin", "--graphs", "FB,ER", "--quick"});
  const BenchArgs parsed = ParseArgs(a.argc(), a.argv());
  ASSERT_EQ(parsed.graphs.size(), 2u);
  EXPECT_EQ(parsed.graphs[0], "FB");
  EXPECT_EQ(parsed.graphs[1], "ER");
  EXPECT_TRUE(parsed.quick);
}

}  // namespace
}  // namespace simdx::bench
